package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// gatedServer builds a server whose checks block on the returned gate
// once they hold a worker slot; entered counts checks that reached the
// gate. Closing the gate releases every blocked and future check.
func gatedServer(t *testing.T, cfg Config) (*Server, *httptest.Server, chan struct{}, *atomic.Int64) {
	t.Helper()
	s := New(cfg)
	gate := make(chan struct{})
	var entered atomic.Int64
	s.beforeCheck = func() {
		entered.Add(1)
		<-gate
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, gate, &entered
}

// postResult is one client's outcome.
type postResult struct {
	status  int
	verdict string
	retry   string
}

// blast fires n concurrent identical requests and returns all
// outcomes.
func blast(t *testing.T, url string, body CheckRequest, n int) []postResult {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]postResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				results[i] = postResult{status: -1}
				return
			}
			var out CheckResponse
			_ = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			results[i] = postResult{
				status:  resp.StatusCode,
				verdict: out.Verdict,
				retry:   resp.Header.Get("Retry-After"),
			}
		}(i)
	}
	wg.Wait()
	return results
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAdmissionControl is the acceptance integration test: with a
// capacity of 64 admitted checks (8 executing, 56 queued), a burst of
// 80 concurrent requests yields exactly 64 correct completed responses
// and exactly 16 429s carrying Retry-After — no admitted request is
// dropped. Run under -race via make race.
func TestAdmissionControl(t *testing.T) {
	const (
		workers = 8
		queue   = 56
		burst   = 80
	)
	rejected0 := obs.ServeRejections.Value("queue-full")
	s, ts, gate, entered := gatedServer(t, Config{Workers: workers, QueueDepth: queue, RetryAfter: 3 * time.Second})
	if s.Capacity() != workers+queue {
		t.Fatalf("capacity %d", s.Capacity())
	}

	var results []postResult
	done := make(chan struct{})
	go func() {
		results = blast(t, ts.URL+"/v1/rcdp", inlineRequest(), burst)
		close(done)
	}()

	// All worker slots fill and every rejection is answered while the
	// admitted 64 are still in flight.
	waitFor(t, "workers busy", func() bool { return entered.Load() >= workers })
	waitFor(t, "16 rejections", func() bool {
		return obs.ServeRejections.Value("queue-full")-rejected0 >= burst-(workers+queue)
	})
	if got := s.inflight.Load(); got != int64(workers+queue) {
		t.Errorf("inflight at saturation = %d, want %d", got, workers+queue)
	}
	// At saturation the occupancy gauge reads exactly the queued (admitted
	// but not executing) requests: inflight minus the executing workers.
	waitFor(t, "queue occupancy gauge", func() bool { return obs.ServeQueueOccupancy.Value() == queue })
	if got := obs.ServeQueueOccupancy.Value(); got != queue {
		t.Errorf("queue occupancy at saturation = %d, want %d", got, queue)
	}
	close(gate)
	<-done

	var ok, tooMany, other int
	for _, r := range results {
		switch r.status {
		case http.StatusOK:
			ok++
			if r.verdict != "complete" {
				t.Errorf("completed response with verdict %q", r.verdict)
			}
		case http.StatusTooManyRequests:
			tooMany++
			if secs, err := strconv.Atoi(r.retry); err != nil || secs < 1 {
				t.Errorf("429 Retry-After = %q", r.retry)
			}
		default:
			other++
		}
	}
	if ok != workers+queue || tooMany != burst-(workers+queue) || other != 0 {
		t.Fatalf("ok=%d tooMany=%d other=%d, want %d/%d/0", ok, tooMany, other, workers+queue, burst-(workers+queue))
	}
	waitFor(t, "inflight back to zero", func() bool { return s.inflight.Load() == 0 })
}

// TestDrain verifies the SIGTERM semantics Drain implements: admitted
// requests (executing and queued) finish, requests arriving during and
// after the drain are refused, and readiness flips to 503.
func TestDrain(t *testing.T) {
	s, ts, gate, entered := gatedServer(t, Config{Workers: 2, QueueDepth: 2})

	var results []postResult
	done := make(chan struct{})
	go func() {
		results = blast(t, ts.URL+"/v1/rcdp", inlineRequest(), 4)
		close(done)
	}()
	waitFor(t, "both workers busy", func() bool { return entered.Load() >= 2 })
	waitFor(t, "queue occupied", func() bool { return s.inflight.Load() == 4 })

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitFor(t, "draining flag", s.Draining)

	// Mid-drain arrivals are refused; readiness reports draining.
	resp, err := http.Post(ts.URL+"/v1/rcdp", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mid-drain request: status %d, want 503", resp.StatusCode)
	}
	// Drain refusals carry the same Retry-After hint as admission 429s,
	// so routed clients back off instead of hammering a dying backend.
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Errorf("503 Retry-After = %q, want >= 1s", resp.Header.Get("Retry-After"))
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mid-drain /readyz: status %d, want 503", resp.StatusCode)
	}

	// The drain must be waiting on the in-flight four.
	select {
	case err := <-drained:
		t.Fatalf("drain returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	<-done
	for i, r := range results {
		if r.status != http.StatusOK || r.verdict != "complete" {
			t.Errorf("in-flight request %d dropped during drain: status %d verdict %q", i, r.status, r.verdict)
		}
	}

	// Post-drain requests stay refused.
	if code := post(t, ts.URL+"/v1/rcdp", inlineRequest(), nil); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d, want 503", code)
	}
}

// TestDrainTimeout: a drain with an expired context reports the
// context error instead of hanging on a stuck check.
func TestDrainTimeout(t *testing.T) {
	s, ts, gate, entered := gatedServer(t, Config{Workers: 1, QueueDepth: 1})

	done := make(chan struct{})
	go func() {
		blast(t, ts.URL+"/v1/rcdp", inlineRequest(), 1)
		close(done)
	}()
	waitFor(t, "worker busy", func() bool { return entered.Load() >= 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("drain error = %v, want deadline exceeded", err)
	}
	close(gate)
	<-done
}

// TestQueuedClientGone: a request whose client disconnects while
// queued releases its admission slot without consuming a worker.
func TestQueuedClientGone(t *testing.T) {
	s, ts, gate, entered := gatedServer(t, Config{Workers: 1, QueueDepth: 4})

	blocker := make(chan struct{})
	go func() {
		blast(t, ts.URL+"/v1/rcdp", inlineRequest(), 1)
		close(blocker)
	}()
	waitFor(t, "worker busy", func() bool { return entered.Load() >= 1 })

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/rcdp", bytes.NewReader(mustJSON(t, inlineRequest())))
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	waitFor(t, "second request queued", func() bool { return s.inflight.Load() == 2 })
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled client got a response")
	}
	waitFor(t, "abandoned slot released", func() bool { return s.inflight.Load() == 1 })
	close(gate)
	<-blocker
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
