package server

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/textq"
)

// broadQuery drops Q1's area selection: incomplete over exDB (c2 can
// legally gain a support edge), with complete specializations.
const broadQuery = `Q2(C) :- Supt(E, D, C), Cust(C, N, CC, A, P), CC = 01`

func TestApproximateInline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := ApproxRequest{CheckRequest: inlineRequest()}
	req.Query = broadQuery
	var resp ApproxResponse
	if code := post(t, ts.URL+"/v1/approximate", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d, resp %+v", code, resp)
	}
	if resp.Verdict != "incomplete" {
		t.Fatalf("verdict %q, want incomplete", resp.Verdict)
	}
	if len(resp.Specializations) == 0 || resp.Explored == 0 || resp.Certified == 0 {
		t.Fatalf("no certified specializations: %+v", resp)
	}
	found := false
	schemas, err := textq.ParseSchemas(exSchemas)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range resp.Specializations {
		// Every returned query must round-trip through the grammar.
		if _, err := textq.ParseQuery(spec.Query, schemas); err != nil {
			t.Fatalf("specialization %q does not parse: %v", spec.Query, err)
		}
		for _, sel := range spec.Selections {
			if sel.Var == "A" && sel.Value == "908" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("A=908 specialization missing: %+v", resp.Specializations)
	}
	if resp.RequestID == "" {
		t.Fatal("request id missing")
	}
}

func TestApproximateCandidateCeiling(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxApproxCandidates: 3})
	req := ApproxRequest{CheckRequest: inlineRequest(), MaxCandidates: 1000}
	req.Query = broadQuery
	var resp ApproxResponse
	if code := post(t, ts.URL+"/v1/approximate", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d, resp %+v", code, resp)
	}
	if resp.Explored > 3 {
		t.Fatalf("ceiling not enforced: explored %d > 3", resp.Explored)
	}
}

func TestApproximateRejectsNonCQ(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := ApproxRequest{CheckRequest: inlineRequest()}
	req.Query = "Q(C) :- Supt(E, D, C)\nQ(C) :- Cust(C, N, CC, A, P)"
	var er ErrorResponse
	if code := post(t, ts.URL+"/v1/approximate", req, &er); code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (err %q)", code, er.Error)
	}
	if !strings.Contains(er.Error, "CQ") {
		t.Fatalf("error %q does not name the CQ requirement", er.Error)
	}
}

func TestAdviseInlineFlips(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := AdviseRequest{CheckRequest: inlineRequest()}
	req.DB = `Cust(c2, Bob, 01, 973, 5550002).`
	var resp AdviseResponse
	if code := post(t, ts.URL+"/v1/advise", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d, resp %+v", code, resp)
	}
	if resp.Verdict != "incomplete" || !resp.Flipped || resp.Final != "complete" {
		t.Fatalf("advice did not flip: %+v", resp)
	}
	if len(resp.Items) == 0 || resp.Rounds == 0 {
		t.Fatalf("empty advice: %+v", resp)
	}
	// AllFacts must parse as facts over the schemas — the contract the
	// mutation endpoints and the smoke script rely on.
	schemas, err := textq.ParseSchemas(exSchemas)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := textq.ParseFacts(resp.AllFacts, schemas); err != nil {
		t.Fatalf("all_facts does not round-trip: %v\n%s", err, resp.AllFacts)
	}
	for i, it := range resp.Items {
		if it.Fact == "" || it.Relation == "" || len(it.Tuple) == 0 {
			t.Fatalf("item %d incomplete: %+v", i, it)
		}
		if i > 0 && resp.Items[i-1].Fresh > it.Fresh {
			t.Fatalf("items not ranked concrete-first: %+v", resp.Items)
		}
	}
}

// TestAdviseCatalogResidentLoop drives the full acquisition loop over
// HTTP: advise against the catalog's resident database, feed all_facts
// to the mutation endpoint, and watch the incomplete verdict flip.
func TestAdviseCatalogResidentLoop(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerMaintainedCRM(t, ts)

	req := AdviseRequest{CheckRequest: CheckRequest{Catalog: "crm", Query: incompleteQuery}}
	var resp AdviseResponse
	if code := post(t, ts.URL+"/v1/advise", req, &resp); code != http.StatusOK {
		t.Fatalf("advise status %d, resp %+v", code, resp)
	}
	if resp.Verdict != "incomplete" || !resp.Flipped || resp.AllFacts == "" {
		t.Fatalf("advice did not flip on resident DB: %+v", resp)
	}

	var mut MutationResponse
	if code := post(t, ts.URL+"/v1/catalog/crm/insert",
		MutationRequest{Facts: resp.AllFacts}, &mut); code != http.StatusOK {
		t.Fatalf("insert status %d, resp %+v", code, mut)
	}
	if _, vr := getVerdicts(t, ts.URL+"/v1/catalog/crm/verdicts"); vr != nil {
		for _, v := range vr.Verdicts {
			if v.Query == incompleteQuery && v.Verdict != "complete" {
				t.Fatalf("maintained verdict did not flip: %+v", vr.Verdicts)
			}
		}
	}

	// A second advise run sees the acquired state: nothing left to do.
	var again AdviseResponse
	if code := post(t, ts.URL+"/v1/advise", req, &again); code != http.StatusOK {
		t.Fatalf("re-advise status %d", code)
	}
	if again.Verdict != "complete" || len(again.Items) != 0 {
		t.Fatalf("re-advise after acquisition: %+v", again)
	}
}

// TestAdviseCatalogExplicitDBUnchanged: a catalog request with an
// explicit db field keeps /v1/rcdp semantics — the resident database is
// not consulted.
func TestAdviseCatalogExplicitDBUnchanged(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerMaintainedCRM(t, ts)
	req := AdviseRequest{CheckRequest: CheckRequest{
		Catalog: "crm",
		DB:      exDB,
		Query:   exQuery,
	}}
	var resp AdviseResponse
	if code := post(t, ts.URL+"/v1/advise", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d, resp %+v", code, resp)
	}
	if resp.Verdict != "complete" {
		t.Fatalf("verdict %q, want complete over explicit exDB", resp.Verdict)
	}
}

func TestApproximateUnknownField(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var er ErrorResponse
	code := post(t, ts.URL+"/v1/approximate", map[string]any{
		"query": broadQuery, "no_such_knob": 1,
	}, &er)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (err %q)", code, er.Error)
	}
}
