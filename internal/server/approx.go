package server

import (
	"context"
	"net/http"
	"strings"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/obs"
	"repro/internal/qlang"
	"repro/internal/textq"
)

// The approximation endpoints wrap internal/approx behind the shared
// serving machinery: POST /v1/approximate computes certified-complete
// specializations and generalizations of an incomplete query, POST
// /v1/advise computes acquisition advice — ranked facts whose insertion
// flips the verdict to complete. Both accept the same problem shapes as
// /v1/rcdp (inline or catalog-backed) with one extra convenience: a
// catalog-backed request with no db field runs against the entry's
// resident database, so advice can be computed for exactly the state
// the mutation endpoints maintain and then applied through them.

// ApproxRequest is the body of /v1/approximate: a check request plus
// lattice-search knobs (zero keeps the engine defaults; max_candidates
// is additionally clamped to the operator ceiling).
type ApproxRequest struct {
	CheckRequest
	MaxSelections   int `json:"max_selections,omitempty"`
	MaxCandidates   int `json:"max_candidates,omitempty"`
	MaxValuesPerVar int `json:"max_values_per_var,omitempty"`
}

// AdviseRequest is the body of /v1/advise: a check request plus the
// witness-round cap (zero keeps the engine default).
type AdviseRequest struct {
	CheckRequest
	MaxRounds int `json:"max_rounds,omitempty"`
}

// SelectionJSON is one added constant selection of a specialization.
type SelectionJSON struct {
	Var   string `json:"var"`
	Value string `json:"value"`
}

// SpecializationJSON is one certified-complete specialization.
type SpecializationJSON struct {
	Query      string          `json:"query"`
	Selections []SelectionJSON `json:"selections"`
}

// GeneralizationJSON is one certified-complete generalization; Dropped
// lists the removed selections as "Var = value" strings.
type GeneralizationJSON struct {
	Query   string   `json:"query"`
	Dropped []string `json:"dropped"`
}

// ApproxResponse is the body of a successful /v1/approximate call.
// Specializations and Generalizations are empty unless Verdict is
// "incomplete" — a complete query needs no approximation.
type ApproxResponse struct {
	RequestID       string               `json:"request_id"`
	Verdict         string               `json:"verdict"`
	Reason          string               `json:"reason,omitempty"`
	Specializations []SpecializationJSON `json:"specializations,omitempty"`
	Generalizations []GeneralizationJSON `json:"generalizations,omitempty"`
	Explored        int                  `json:"explored"`
	Certified       int                  `json:"certified"`
}

// AdviceItemJSON is one ranked acquisition candidate. Fact is the tuple
// in textq fact syntax, ready to feed to the mutation endpoints; Fresh
// counts ⊥ placeholder values (0 = concrete, insert as-is).
type AdviceItemJSON struct {
	Round    int      `json:"round"`
	Relation string   `json:"relation"`
	Tuple    []string `json:"tuple"`
	Fresh    int      `json:"fresh"`
	Fact     string   `json:"fact"`
}

// AdviseResponse is the body of a successful /v1/advise call. AllFacts
// aggregates every item's fact syntax into one facts block accepted
// verbatim by POST /v1/catalog/{name}/insert.
type AdviseResponse struct {
	RequestID string           `json:"request_id"`
	Verdict   string           `json:"verdict"`
	Final     string           `json:"final"`
	Flipped   bool             `json:"flipped"`
	Rounds    int              `json:"rounds"`
	Items     []AdviceItemJSON `json:"items,omitempty"`
	AllFacts  string           `json:"all_facts,omitempty"`
}

// approxOptions assembles the engine options for one request: the
// request knobs over the engine defaults, with the candidate budget
// clamped to the operator ceiling.
func (s *Server) approxOptions(budget core.Budget, maxSel, maxCand, maxVals, maxRounds int) approx.Options {
	if maxCand <= 0 || maxCand > s.cfg.MaxApproxCandidates {
		maxCand = s.cfg.MaxApproxCandidates
	}
	return approx.Options{
		Checker:         &core.Checker{Workers: s.cfg.CheckWorkers, Budget: budget},
		MaxSelections:   maxSel,
		MaxCandidates:   maxCand,
		MaxValuesPerVar: maxVals,
		MaxRounds:       maxRounds,
	}
}

// serveApproximate handles POST /v1/approximate.
func (s *Server) serveApproximate(ctx context.Context, id string, req *ApproxRequest, w http.ResponseWriter, _ *http.Request) {
	in, err := s.resolveWith(&req.CheckRequest, true)
	if err != nil {
		writeError(w, id, statusOf(err), "%s", err.Error())
		return
	}
	if in.release != nil {
		defer in.release()
	}
	if err := decidable(in); err != nil {
		writeError(w, id, statusOf(err), "%s", err.Error())
		return
	}
	opts := s.approxOptions(in.budget, req.MaxSelections, req.MaxCandidates, req.MaxValuesPerVar, 0)
	res, err := approx.Approximate(ctx, in.q, in.d, in.dm, in.v, opts)
	if err != nil {
		writeError(w, id, statusOf(err), "%s", err.Error())
		return
	}
	out := &ApproxResponse{
		RequestID: id,
		Verdict:   res.Verdict.String(),
		Reason:    res.Base.Reason.String(),
		Explored:  res.Explored,
		Certified: res.Certified,
	}
	for _, spec := range res.Specializations {
		js := SpecializationJSON{Query: formatCQ(spec.Query)}
		for _, sel := range spec.Selections {
			js.Selections = append(js.Selections, SelectionJSON{Var: sel.Var, Value: string(sel.Value)})
		}
		out.Specializations = append(out.Specializations, js)
	}
	for _, gen := range res.Generalizations {
		js := GeneralizationJSON{Query: formatCQ(gen.Query)}
		for _, c := range gen.Dropped {
			v, val := c.L, c.R
			if !v.IsVar {
				v, val = c.R, c.L
			}
			js.Dropped = append(js.Dropped, v.Name+" = "+string(val.Val))
		}
		out.Generalizations = append(out.Generalizations, js)
	}
	obs.ServeVerdicts.Inc(out.Verdict)
	writeJSON(w, http.StatusOK, out)
}

// serveAdvise handles POST /v1/advise.
func (s *Server) serveAdvise(ctx context.Context, id string, req *AdviseRequest, w http.ResponseWriter, _ *http.Request) {
	in, err := s.resolveWith(&req.CheckRequest, true)
	if err != nil {
		writeError(w, id, statusOf(err), "%s", err.Error())
		return
	}
	if in.release != nil {
		defer in.release()
	}
	if err := decidable(in); err != nil {
		writeError(w, id, statusOf(err), "%s", err.Error())
		return
	}
	opts := s.approxOptions(in.budget, 0, 0, 0, req.MaxRounds)
	adv, err := approx.Advise(ctx, in.q, in.d, in.dm, in.v, opts)
	if err != nil {
		writeError(w, id, statusOf(err), "%s", err.Error())
		return
	}
	out := &AdviseResponse{
		RequestID: id,
		Verdict:   adv.Verdict.String(),
		Final:     adv.Final.String(),
		Flipped:   adv.Flipped,
		Rounds:    adv.Rounds,
	}
	for _, it := range adv.Items {
		fact := textq.FormatFact(it.Relation, it.Tuple)
		out.Items = append(out.Items, AdviceItemJSON{
			Round:    it.Round,
			Relation: it.Relation,
			Tuple:    tupleJSON(it.Tuple),
			Fresh:    it.Fresh,
			Fact:     fact,
		})
		if out.AllFacts != "" {
			out.AllFacts += "\n"
		}
		out.AllFacts += fact
	}
	obs.ServeVerdicts.Inc(out.Verdict)
	writeJSON(w, http.StatusOK, out)
}

// formatCQ renders a candidate query in the textq grammar; candidates
// are built from parsed queries, so formatting cannot fail in practice
// and a failure degrades to the Go syntax rather than erroring the
// whole response.
func formatCQ(q *cq.CQ) string {
	src, err := textq.FormatQuery(qlang.FromCQ(q))
	if err != nil {
		return q.String()
	}
	return strings.TrimRight(src, "\n")
}
