package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/textq"
)

// Catalog mutations and maintained verdicts.
//
// A catalog entry is a live completeness context, not a frozen
// snapshot: POST /v1/catalog/{name}/insert and /delete apply a batch of
// textq facts to the entry's resident database D (the default) or its
// master data Dm, patching the relation indexes and cc p(Dm) memos in
// place instead of rebuilding them. Entries registered with watched
// queries maintain those queries' RCDP verdicts across mutations —
// reusing a cached verdict when the core invisibility gate
// (core.Delta.WitnessReusable) proves the batch cannot have changed it,
// and rerunning the check cold over the incrementally patched data
// otherwise. GET /v1/catalog/{name}/verdicts reads (and optionally
// long-polls) the maintained verdicts, so clients observe flips without
// re-posting checks.

// watchedVerdict is the maintained state of one watched query.
type watchedVerdict struct {
	src    string
	q      qlang.Query
	prev   *core.RCDPResult // nil after a failed recheck: stale, rerun next mutation
	reused bool             // the last maintenance step reused prev instead of rerunning
}

// maxVerdictWaitMS bounds how long one verdicts long-poll may park.
const maxVerdictWaitMS = 60_000

// MutationRequest is the body of POST /v1/catalog/{name}/insert and
// /delete: a batch of textq facts against the entry's resident
// database ("db", the default) or its master data ("master").
type MutationRequest struct {
	Target string `json:"target,omitempty"`
	Facts  string `json:"facts"`
}

// MutationResponse reports one applied batch: the rows actually
// inserted and deleted (duplicates and absent deletes are no-ops), the
// reused-versus-rechecked split over the entry's watched verdicts, and
// the entry version the batch produced (what verdict long-polls pass
// back as ?after=).
type MutationResponse struct {
	RequestID string `json:"request_id"`
	Catalog   string `json:"catalog"`
	Op        string `json:"op"`
	Target    string `json:"target"`
	Inserted  int    `json:"inserted"`
	Deleted   int    `json:"deleted"`
	Reused    int    `json:"reused"`
	Rechecked int    `json:"rechecked"`
	Version   uint64 `json:"version"`
}

// WatchedVerdict is the wire form of one maintained verdict.
type WatchedVerdict struct {
	Query     string   `json:"query"`
	Verdict   string   `json:"verdict"`
	Reason    string   `json:"reason,omitempty"`
	Extension string   `json:"extension,omitempty"`
	NewTuple  []string `json:"new_tuple,omitempty"`
	Reused    bool     `json:"reused"`
}

// VerdictsResponse is the body of GET /v1/catalog/{name}/verdicts.
type VerdictsResponse struct {
	RequestID string           `json:"request_id"`
	Catalog   string           `json:"catalog"`
	Version   uint64           `json:"version"`
	Verdicts  []WatchedVerdict `json:"verdicts"`
}

// mutationOutcome is Mutate's summary of one applied batch.
type mutationOutcome struct {
	ins, del          int
	reused, rechecked int
	version           uint64
}

// Watch seeds maintained verdicts for queries against the entry's
// resident database. Queries already watched are kept as they are;
// like the exact check endpoints, non-monotone queries are refused
// (the maintained verdict would be undecidable).
func (e *Entry) Watch(ctx context.Context, ck *core.Checker, queries []string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, src := range queries {
		if _, ok := e.verdicts[src]; ok {
			continue
		}
		q, err := e.Query(src)
		if err != nil {
			return fmt.Errorf("watch query %q: %w", src, err)
		}
		if !q.Lang().Monotone() || !e.V.AllMonotone() {
			return fmt.Errorf("watch query %q: undecidable fragment", src)
		}
		res, err := ck.RCDPCtx(ctx, q, e.D, e.Dm, e.V)
		if err != nil {
			return fmt.Errorf("watch query %q: %w", src, err)
		}
		e.watched = append(e.watched, src)
		e.verdicts[src] = &watchedVerdict{src: src, q: q, prev: res}
	}
	e.bump()
	return nil
}

// bump advances the entry version and wakes parked long-polls. Callers
// hold e.mu.
func (e *Entry) bump() {
	e.version++
	close(e.changed)
	e.changed = make(chan struct{})
}

// Mutate applies dl to the entry and maintains every watched verdict.
// Each verdict is gated on the PRE-apply state — the projections and
// active domain its cached result was computed against: verdicts the
// invisibility gate proves untouched are reused (a cached Incomplete
// witness is first cheaply revalidated as defense in depth), the rest
// rerun cold over the incrementally patched data. An apply error (e.g.
// arity mismatch) leaves the entry unchanged; a recheck error keeps the
// batch applied (it already happened), resets that query's verdict to
// stale and is reported after the remaining queries are maintained.
func (e *Entry) Mutate(ctx context.Context, ck *core.Checker, dl *core.Delta) (mutationOutcome, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out mutationOutcome
	if e.D == nil {
		return out, fmt.Errorf("catalog %q has no resident database", e.Name)
	}
	gates := make(map[string]bool, len(e.watched))
	for src, wv := range e.verdicts {
		gates[src] = core.ResultReusable(wv.prev) && dl.WitnessReusable(wv.q, e.D, e.Dm, e.V)
	}
	var err error
	if out.ins, out.del, err = dl.Apply(e.D, e.Dm, e.V); err != nil {
		return mutationOutcome{}, err
	}
	var firstErr error
	for _, src := range e.watched {
		wv := e.verdicts[src]
		if gates[src] && (wv.prev.Verdict != core.VerdictIncomplete || e.revalidate(wv.prev)) {
			obs.RecheckReused.Inc()
			wv.reused = true
			out.reused++
			continue
		}
		obs.RecheckCold.Inc()
		wv.reused = false
		out.rechecked++
		res, rerr := ck.RCDPCtx(ctx, wv.q, e.D, e.Dm, e.V)
		if rerr != nil {
			wv.prev = nil
			if firstErr == nil {
				firstErr = fmt.Errorf("recheck %q: %w", src, rerr)
			}
			continue
		}
		wv.prev = res
	}
	e.bump()
	out.version = e.version
	return out, firstErr
}

// revalidate re-verifies a cached incompleteness witness against the
// mutated data (D ∪ ext must still satisfy V). Under the invisibility
// gate this cannot fail; it is a cheap guard against gate bugs, and a
// failure routes the query to the cold path.
func (e *Entry) revalidate(prev *core.RCDPResult) bool {
	if prev.Extension == nil {
		return false
	}
	ok, err := e.V.SatisfiedDelta(e.D, prev.Extension, e.Dm)
	return err == nil && ok
}

// verdictsSnapshot returns the current version, the channel the next
// bump closes, and the wire-form verdicts in watch order.
func (e *Entry) verdictsSnapshot() (uint64, <-chan struct{}, []WatchedVerdict) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]WatchedVerdict, 0, len(e.watched))
	for _, src := range e.watched {
		wv := e.verdicts[src]
		wj := WatchedVerdict{Query: src, Verdict: "stale", Reused: wv.reused}
		if wv.prev != nil {
			wj.Verdict = wv.prev.Verdict.String()
			wj.Reason = wv.prev.Reason.String()
			if wv.prev.Verdict == core.VerdictIncomplete {
				wj.Extension = textq.FormatDatabase(wv.prev.Extension)
				wj.NewTuple = tupleJSON(wv.prev.NewTuple)
			}
		}
		out = append(out, wj)
	}
	return e.version, e.changed, out
}

// serveMutation builds the insert/delete endpoint body for the shared
// admission machinery; the catalog name comes from the route pattern.
func (s *Server) serveMutation(op string) func(ctx context.Context, id string, req *MutationRequest, w http.ResponseWriter, r *http.Request) {
	return func(ctx context.Context, id string, req *MutationRequest, w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		e := s.catalog.Get(name)
		if e == nil {
			writeError(w, id, http.StatusNotFound, "catalog %q is not registered", name)
			return
		}
		target := req.Target
		if target == "" {
			target = "db"
		}
		var schemas map[string]*relation.Schema
		switch target {
		case "db":
			schemas = e.Schemas
		case "master":
			schemas = e.MasterSchemas
		default:
			writeError(w, id, http.StatusBadRequest, `target must be "db" or "master"`)
			return
		}
		tuples, err := factsTuples(req.Facts, schemas)
		if err != nil {
			writeError(w, id, http.StatusBadRequest, "facts: %v", err)
			return
		}
		dl := &core.Delta{Master: target == "master"}
		if op == "insert" {
			dl.Inserts = tuples
		} else {
			dl.Deletes = tuples
		}
		ck := &core.Checker{Workers: s.cfg.CheckWorkers, Budget: s.effectiveBudget(nil)}
		out, err := e.Mutate(ctx, ck, dl)
		if err != nil {
			writeError(w, id, statusOf(err), "%s", err.Error())
			return
		}
		writeJSON(w, http.StatusOK, &MutationResponse{
			RequestID: id,
			Catalog:   name,
			Op:        op,
			Target:    target,
			Inserted:  out.ins,
			Deleted:   out.del,
			Reused:    out.reused,
			Rechecked: out.rechecked,
			Version:   out.version,
		})
	}
}

// factsTuples parses a textq fact batch into per-relation tuple groups
// (the Delta wire-to-core conversion).
func factsTuples(src string, schemas map[string]*relation.Schema) (map[string][]relation.Tuple, error) {
	db, err := textq.ParseFacts(src, schemas)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]relation.Tuple)
	for _, rel := range db.Relations() {
		if ts := db.Instance(rel).Tuples(); len(ts) > 0 {
			out[rel] = ts
		}
	}
	return out, nil
}

// verdictsHandler serves GET /v1/catalog/{name}/verdicts: the
// maintained verdicts of the entry's watched queries. With ?after=N
// and ?wait_ms=T the response is held back until the entry version
// exceeds N or T milliseconds pass (long-poll), so clients observe
// verdict flips without tight polling. The handler stays outside the
// admission path on purpose: it runs no search, only reads maintained
// state, and a parked long-poll must not occupy a worker slot.
func (s *Server) verdictsHandler(w http.ResponseWriter, r *http.Request) {
	obs.ServeRequests.Inc("verdicts")
	id := s.nextRequestID()
	w.Header().Set("X-Request-Id", id)
	name := r.PathValue("name")
	e := s.catalog.Get(name)
	if e == nil {
		writeError(w, id, http.StatusNotFound, "catalog %q is not registered", name)
		return
	}
	after, err := uintParam(r, "after")
	if err != nil {
		writeError(w, id, http.StatusBadRequest, "%v", err)
		return
	}
	waitMS, err := uintParam(r, "wait_ms")
	if err != nil {
		writeError(w, id, http.StatusBadRequest, "%v", err)
		return
	}
	if waitMS > maxVerdictWaitMS {
		waitMS = maxVerdictWaitMS
	}
	deadline := time.Now().Add(time.Duration(waitMS) * time.Millisecond)
	for {
		version, changed, verdicts := e.verdictsSnapshot()
		if version > after || waitMS == 0 || !time.Now().Before(deadline) {
			writeJSON(w, http.StatusOK, &VerdictsResponse{
				RequestID: id, Catalog: e.Name, Version: version, Verdicts: verdicts,
			})
			return
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-changed:
			timer.Stop()
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
	}
}

// uintParam parses an optional unsigned query parameter (absent = 0).
func uintParam(r *http.Request, name string) (uint64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: %v", name, err)
	}
	return n, nil
}
