package cc

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/query"
	"repro/internal/relation"
)

// reverseFixture: master ManageM must be reflected in Manage.
func reverseFixture() (*relation.Database, *relation.Database, *Constraint) {
	manage := relation.NewSchema("Manage", relation.Attr("a"), relation.Attr("b"))
	managem := relation.NewSchema("ManageM", relation.Attr("a"), relation.Attr("b"))
	d := relation.NewDatabase(manage)
	dm := relation.NewDatabase(managem)
	q := cq.New("q", []query.Term{v("x"), v("y")},
		[]query.RelAtom{query.Atom("Manage", v("x"), v("y"))})
	rc := ReverseFromCQ("rev", Proj("ManageM", 0, 1), q)
	return d, dm, rc
}

func TestReverseConstraintSemantics(t *testing.T) {
	d, dm, rc := reverseFixture()
	if err := rc.Validate(dm); err != nil {
		t.Fatal(err)
	}
	// Vacuously satisfied with empty master data.
	ok, err := rc.Satisfied(d, dm)
	if err != nil || !ok {
		t.Fatalf("empty master: %v %v", ok, err)
	}
	dm.MustAdd("ManageM", "e1", "e0")
	tup, viol, err := rc.Violation(d, dm)
	if err != nil || !viol {
		t.Fatalf("missing master edge must violate: %v %v", viol, err)
	}
	if !tup.Equal(relation.T("e1", "e0")) {
		t.Fatalf("witness %v", tup)
	}
	d.MustAdd("Manage", "e1", "e0")
	ok, _ = rc.Satisfied(d, dm)
	if !ok {
		t.Fatal("satisfied after adding the edge")
	}
}

func TestReverseMonotoneDelta(t *testing.T) {
	d, dm, rc := reverseFixture()
	dm.MustAdd("ManageM", "e1", "e0")
	d.MustAdd("Manage", "e1", "e0")
	set := NewSet(rc)
	delta := relation.NewDatabase(relation.NewSchema("Manage", relation.Attr("a"), relation.Attr("b")))
	delta.MustAdd("Manage", "e9", "e8")
	ok, err := set.SatisfiedDelta(d, delta, dm)
	if err != nil || !ok {
		t.Fatalf("reverse constraints are monotone in D: %v %v", ok, err)
	}
}

func TestReverseExcludedFromINDPaths(t *testing.T) {
	_, _, rc := reverseFixture()
	if _, isIND := rc.IND(); isIND {
		t.Fatal("reverse constraint detected as IND")
	}
	set := NewSet(rc)
	if set.AllINDs() {
		t.Fatal("reverse constraint must disable the IND fast path")
	}
	if _, ok := set.BoundedColumns(); ok {
		t.Fatal("BoundedColumns must refuse reverse constraints")
	}
}

func TestReverseValidateErrors(t *testing.T) {
	_, dm, _ := reverseFixture()
	q := cq.New("q", []query.Term{v("x")},
		[]query.RelAtom{query.Atom("Manage", v("x"), v("y"))})
	bad := ReverseFromCQ("bad", Proj("Nope", 0), q)
	if bad.Validate(dm) == nil {
		t.Fatal("unknown master relation accepted")
	}
	arity := ReverseFromCQ("bad2", Proj("ManageM", 0, 1), q)
	if arity.Validate(dm) == nil {
		t.Fatal("arity mismatch accepted")
	}
	if ReverseFromCQ("v", EmptySet(), q).Validate(dm) != nil {
		t.Fatal("vacuous reverse constraint rejected")
	}
}

func TestReverseString(t *testing.T) {
	_, _, rc := reverseFixture()
	want := "rev: π[#0,#1](ManageM) ⊆ q(x, y) :- Manage(x, y)"
	if rc.String() != want {
		t.Fatalf("String = %q", rc.String())
	}
}
