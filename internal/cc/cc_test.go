package cc

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

func v(n string) query.Term { return query.Var(n) }
func c(s string) query.Term { return query.C(s) }

// crmSchemas builds the Example 1.1 schemas: master DCust(cid,name,ac,phn),
// database Cust(cid,name,cc,ac,phn) and Supt(eid,dept,cid).
func crmSchemas() (d *relation.Database, dm *relation.Database) {
	cust := relation.NewSchema("Cust",
		relation.Attr("cid"), relation.Attr("name"), relation.Attr("cc"),
		relation.Attr("ac"), relation.Attr("phn"))
	supt := relation.NewSchema("Supt",
		relation.Attr("eid"), relation.Attr("dept"), relation.Attr("cid"))
	dcust := relation.NewSchema("DCust",
		relation.Attr("cid"), relation.Attr("name"), relation.Attr("ac"), relation.Attr("phn"))
	return relation.NewDatabase(cust, supt), relation.NewDatabase(dcust)
}

// phi0 is the CC of Example 2.1: all supported domestic customers are
// bounded by the master relation DCust.
func phi0() *Constraint {
	q := cq.New("phi0", []query.Term{v("c")},
		[]query.RelAtom{
			query.Atom("Cust", v("c"), v("n"), v("cc"), v("a"), v("p")),
			query.Atom("Supt", v("e"), v("d"), v("c")),
		},
		query.Eq(v("cc"), c("01")))
	return FromCQ("phi0", q, Proj("DCust", 0))
}

func TestPhi0Satisfaction(t *testing.T) {
	d, dm := crmSchemas()
	dm.MustAdd("DCust", "c1", "Ann", "908", "5550001")
	d.MustAdd("Cust", "c1", "Ann", "01", "908", "5550001")
	d.MustAdd("Cust", "c9", "Bob", "44", "020", "5550002") // international
	d.MustAdd("Supt", "e0", "sales", "c1")
	d.MustAdd("Supt", "e0", "sales", "c9")

	phi := phi0()
	if err := phi.Validate(dm); err != nil {
		t.Fatal(err)
	}
	ok, err := phi.Satisfied(d, dm)
	if err != nil || !ok {
		t.Fatalf("phi0 should hold: ok=%v err=%v", ok, err)
	}
	// A supported domestic customer missing from DCust violates it.
	d.MustAdd("Cust", "c2", "Eve", "01", "973", "5550003")
	d.MustAdd("Supt", "e1", "sales", "c2")
	tup, viol, err := phi.Violation(d, dm)
	if err != nil || !viol {
		t.Fatalf("phi0 should be violated: %v %v", viol, err)
	}
	if tup[0] != "c2" {
		t.Fatalf("violation witness = %v", tup)
	}
}

func TestEmptySetConstraint(t *testing.T) {
	d, dm := crmSchemas()
	d.MustAdd("Supt", "e0", "sales", "c1")
	// q(e) :- Supt(e, d, c), e = 'forbidden' ⊆ ∅.
	q := cq.New("q", []query.Term{v("e")},
		[]query.RelAtom{query.Atom("Supt", v("e"), v("d"), v("c"))},
		query.Eq(v("e"), c("forbidden")))
	con := FromCQ("noForbidden", q, EmptySet())
	ok, err := con.Satisfied(d, dm)
	if err != nil || !ok {
		t.Fatalf("should hold: %v %v", ok, err)
	}
	d.MustAdd("Supt", "forbidden", "x", "y")
	ok, _ = con.Satisfied(d, dm)
	if ok {
		t.Fatal("should be violated")
	}
}

func TestSetOperations(t *testing.T) {
	d, dm := crmSchemas()
	dm.MustAdd("DCust", "c1", "Ann", "908", "5550001")
	d.MustAdd("Cust", "c1", "Ann", "01", "908", "5550001")
	d.MustAdd("Supt", "e0", "sales", "c1")

	set := NewSet(phi0(), AtMostK("atmost2", "Supt", 3, []int{0}, 2, 2))
	if err := set.Validate(dm); err != nil {
		t.Fatal(err)
	}
	ok, err := set.Satisfied(d, dm)
	if err != nil || !ok {
		t.Fatalf("set should hold: %v %v", ok, err)
	}
	if set.AllINDs() {
		t.Fatal("set is not all-IND")
	}
	if !set.AllMonotone() {
		t.Fatal("set is monotone")
	}
	if set.MaxLang() != qlang.CQ {
		t.Fatalf("MaxLang = %v", set.MaxLang())
	}
	if set.Len() != 2 {
		t.Fatal("Len wrong")
	}
}

func TestAtMostK(t *testing.T) {
	d, dm := crmSchemas()
	con := AtMostK("k2", "Supt", 3, []int{0}, 2, 2)
	d.MustAdd("Supt", "e0", "s", "c1")
	d.MustAdd("Supt", "e0", "s", "c2")
	ok, err := con.Satisfied(d, dm)
	if err != nil || !ok {
		t.Fatalf("two customers within k=2: %v %v", ok, err)
	}
	d.MustAdd("Supt", "e0", "t", "c3")
	ok, _ = con.Satisfied(d, dm)
	if ok {
		t.Fatal("three customers must violate k=2")
	}
	// Another employee with few customers stays fine.
	d2, _ := crmSchemas()
	d2.MustAdd("Supt", "e1", "s", "c1")
	d2.MustAdd("Supt", "e2", "s", "c1")
	d2.MustAdd("Supt", "e3", "s", "c2")
	ok, _ = con.Satisfied(d2, dm)
	if !ok {
		t.Fatal("distinct employees must not interact")
	}
}

func TestSatisfiedDeltaAgreesWithFull(t *testing.T) {
	d, dm := crmSchemas()
	dm.MustAdd("DCust", "c1", "Ann", "908", "5550001")
	d.MustAdd("Cust", "c1", "Ann", "01", "908", "5550001")
	d.MustAdd("Supt", "e0", "sales", "c1")
	set := NewSet(phi0(), AtMostK("k1", "Supt", 3, []int{0}, 2, 1))

	deltas := []func(x *relation.Database){
		func(x *relation.Database) { x.MustAdd("Supt", "e0", "s", "c7") }, // violates k1
		func(x *relation.Database) { x.MustAdd("Supt", "e1", "s", "c1") }, // fine
		func(x *relation.Database) { // violates phi0: new domestic customer not in DCust
			x.MustAdd("Cust", "c5", "Eve", "01", "973", "5")
			x.MustAdd("Supt", "e2", "s", "c5")
		},
	}
	for i, mk := range deltas {
		dd, _ := crmSchemas()
		mk(dd)
		fast, err := set.SatisfiedDelta(d, dd, dm)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := set.Satisfied(d.Union(dd), dm)
		if err != nil {
			t.Fatal(err)
		}
		if fast != slow {
			t.Errorf("delta %d: fast=%v slow=%v", i, fast, slow)
		}
	}
}

func TestINDDetection(t *testing.T) {
	_, dm := crmSchemas()
	ind := NewIND("ind1", "Supt", []int{2}, 3, Proj("DCust", 0))
	shape, ok := ind.IND()
	if !ok || shape.Rel != "Supt" || len(shape.Cols) != 1 || shape.Cols[0] != 2 {
		t.Fatalf("IND shape: %v %v", shape, ok)
	}
	if err := ind.Validate(dm); err != nil {
		t.Fatal(err)
	}
	// phi0 has a join and a selection: not an IND.
	if _, ok := phi0().IND(); ok {
		t.Fatal("phi0 wrongly detected as IND")
	}
	// Selection via repeated variable is not an IND.
	q := cq.New("q", []query.Term{v("x")},
		[]query.RelAtom{query.Atom("Supt", v("x"), v("x"), v("z"))})
	if _, ok := FromCQ("sel", q, Proj("DCust", 0)).IND(); ok {
		t.Fatal("repeated-variable selection detected as IND")
	}
	// Constant selection is not an IND.
	q2 := cq.New("q", []query.Term{v("x")},
		[]query.RelAtom{query.Atom("Supt", v("x"), c("d"), v("z"))})
	if _, ok := FromCQ("sel2", q2, Proj("DCust", 0)).IND(); ok {
		t.Fatal("constant selection detected as IND")
	}
}

func TestINDSemantics(t *testing.T) {
	d, dm := crmSchemas()
	dm.MustAdd("DCust", "c1", "Ann", "908", "1")
	ind := NewIND("ind1", "Supt", []int{2}, 3, Proj("DCust", 0))
	d.MustAdd("Supt", "e0", "s", "c1")
	ok, err := ind.Satisfied(d, dm)
	if err != nil || !ok {
		t.Fatalf("IND should hold: %v %v", ok, err)
	}
	d.MustAdd("Supt", "e0", "s", "c9")
	ok, _ = ind.Satisfied(d, dm)
	if ok {
		t.Fatal("IND should be violated")
	}
}

func TestBoundedColumnsAndValueBound(t *testing.T) {
	d, dm := crmSchemas()
	_ = d
	dm.MustAdd("DCust", "c1", "Ann", "908", "1")
	dm.MustAdd("DCust", "c2", "Bob", "973", "2")
	set := NewSet(
		NewIND("i1", "Supt", []int{2}, 3, Proj("DCust", 0)),
		NewIND("i2", "Supt", []int{0, 2}, 3, Proj("DCust", 1, 0)),
	)
	cols, ok := set.BoundedColumns()
	if !ok {
		t.Fatal("all-IND set not recognized")
	}
	if !cols["Supt"][0] || !cols["Supt"][2] || cols["Supt"][1] {
		t.Fatalf("BoundedColumns: %v", cols)
	}
	// Column 2 is bounded by both INDs: i1 allows {c1,c2}; i2's second
	// head position projects DCust col 0 = {c1,c2}; intersection {c1,c2}.
	vals, found := set.INDValueBound(dm, "Supt", 2)
	if !found || len(vals) != 2 || vals[0] != "c1" || vals[1] != "c2" {
		t.Fatalf("INDValueBound: %v %v", vals, found)
	}
	// Column 0 bounded by i2 first position → names.
	vals, found = set.INDValueBound(dm, "Supt", 0)
	if !found || len(vals) != 2 || vals[0] != "Ann" {
		t.Fatalf("INDValueBound col0: %v %v", vals, found)
	}
	if _, found := set.INDValueBound(dm, "Supt", 1); found {
		t.Fatal("unbounded column reported bounded")
	}
	// A non-IND constraint disables the syntactic path.
	set.Add(phi0())
	if _, ok := set.BoundedColumns(); ok {
		t.Fatal("non-IND set accepted by BoundedColumns")
	}
}

func TestValidateErrors(t *testing.T) {
	_, dm := crmSchemas()
	badRel := FromCQ("b1", cq.New("q", []query.Term{v("x")},
		[]query.RelAtom{query.Atom("Supt", v("x"), v("y"), v("z"))}), Proj("Nope", 0))
	if badRel.Validate(dm) == nil {
		t.Fatal("unknown master relation accepted")
	}
	badCol := FromCQ("b2", cq.New("q", []query.Term{v("x")},
		[]query.RelAtom{query.Atom("Supt", v("x"), v("y"), v("z"))}), Proj("DCust", 9))
	if badCol.Validate(dm) == nil {
		t.Fatal("out-of-range column accepted")
	}
	badArity := FromCQ("b3", cq.New("q", []query.Term{v("x"), v("y")},
		[]query.RelAtom{query.Atom("Supt", v("x"), v("y"), v("z"))}), Proj("DCust", 0))
	if badArity.Validate(dm) == nil {
		t.Fatal("arity mismatch accepted")
	}
	dup := NewSet(phi0(), phi0())
	if dup.Validate(dm) == nil {
		t.Fatal("duplicate names accepted")
	}
}

func TestNilSetBehaviour(t *testing.T) {
	var s *Set
	d, dm := crmSchemas()
	ok, err := s.Satisfied(d, dm)
	if err != nil || !ok {
		t.Fatal("nil set must be satisfied")
	}
	if !s.AllINDs() || !s.AllMonotone() || s.Len() != 0 {
		t.Fatal("nil set properties")
	}
	if s.String() != "{}" {
		t.Fatal("nil set String")
	}
}
