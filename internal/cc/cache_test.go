package cc

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// TestMasterSideCacheInvalidation pins the p(Dm) memoization: the cache
// serves repeated checks against an unchanged Dm, and a mutation of the
// projected master instance (generation bump) or a different Dm
// invalidates it.
func TestMasterSideCacheInvalidation(t *testing.T) {
	d, dm := crmSchemas()
	dm.MustAdd("DCust", "c1", "Ann", "908", "5550001")
	d.MustAdd("Cust", "c1", "Ann", "01", "908", "5550001")
	d.MustAdd("Supt", "e0", "sales", "c1")
	phi := phi0()

	if ok, err := phi.Satisfied(d, dm); err != nil || !ok {
		t.Fatalf("phi0 should hold: ok=%v err=%v", ok, err)
	}
	// A new supported domestic customer, also added to the master: the
	// constraint must keep holding — only if the cached projection is
	// refreshed after dm changes.
	dm.MustAdd("DCust", "c2", "Eve", "973", "5550002")
	d.MustAdd("Cust", "c2", "Eve", "01", "973", "5550002")
	d.MustAdd("Supt", "e1", "sales", "c2")
	if ok, err := phi.Satisfied(d, dm); err != nil || !ok {
		t.Fatalf("phi0 should hold after master grows: ok=%v err=%v", ok, err)
	}
	// Removing the master row must flip the verdict (stale cache would
	// keep answering satisfied).
	dm.Instance("DCust").Remove(relation.T("c2", "Eve", "973", "5550002"))
	if ok, err := phi.Satisfied(d, dm); err != nil || ok {
		t.Fatalf("phi0 should be violated after master row removal: ok=%v err=%v", ok, err)
	}
	// A different master database (fresh instance pointers) gets its own
	// projection even at the same generation.
	_, dm2 := crmSchemas()
	dm2.MustAdd("DCust", "c1", "Ann", "908", "5550001")
	dm2.MustAdd("DCust", "c2", "Eve", "973", "5550002")
	if ok, err := phi.Satisfied(d, dm2); err != nil || !ok {
		t.Fatalf("phi0 should hold against the second master copy: ok=%v err=%v", ok, err)
	}
}

// TestSatisfiedDeltaAgreesWithFullRandom extends the fixed-case
// agreement test with randomized bases and deltas over the CRM schema,
// exercising the overlay evaluation (no union materialization) on
// overlapping and disjoint deltas alike.
func TestSatisfiedDeltaAgreesWithFullRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	cids := []string{"c1", "c2", "c3", "c4"}
	eids := []string{"e0", "e1"}
	acs := []string{"908", "973"}
	randDB := func(n int) *relation.Database {
		db, _ := crmSchemas()
		for i := 0; i < n; i++ {
			ci := cids[rng.Intn(len(cids))]
			switch rng.Intn(3) {
			case 0:
				db.MustAdd("Cust", ci, "n"+ci, []string{"01", "44"}[rng.Intn(2)], acs[rng.Intn(2)], "555")
			case 1:
				db.MustAdd("Supt", eids[rng.Intn(2)], "sales", ci)
			case 2:
				db.MustAdd("Cust", ci, "n"+ci, "01", acs[rng.Intn(2)], "555")
			}
		}
		return db
	}
	_, dm := crmSchemas()
	dm.MustAdd("DCust", "c1", "nc1", "908", "555")
	dm.MustAdd("DCust", "c2", "nc2", "973", "555")
	set := NewSet(phi0(), AtMostK("k1", "Supt", 3, []int{0}, 3, 1))

	trials := 0
	for trial := 0; trial < 500 && trials < 200; trial++ {
		d := randDB(rng.Intn(5))
		if ok, err := set.Satisfied(d, dm); err != nil || !ok {
			continue // SatisfiedDelta's precondition requires (D, Dm) ⊨ V
		}
		trials++
		delta := randDB(rng.Intn(3) + 1)
		fast, err := set.SatisfiedDelta(d, delta, dm)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := set.Satisfied(d.Union(delta), dm)
		if err != nil {
			t.Fatal(err)
		}
		if fast != slow {
			t.Fatalf("trial %d: SatisfiedDelta=%v but full recheck=%v\nD:\n%v\ndelta:\n%v",
				trial, fast, slow, d, delta)
		}
	}
	if trials < 100 {
		t.Fatalf("too few partially closed trials: %d", trials)
	}
}
