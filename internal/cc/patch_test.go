package cc

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/relation"
)

// TestPatchMasterExtendsMemo pins the copy-on-write memo patch: after
// an insert-only master batch plus PatchMaster, the memo answers at the
// new generation without a rebuild, and its contents equal a cold
// rebuild's.
func TestPatchMasterExtendsMemo(t *testing.T) {
	d, dm := crmSchemas()
	dm.MustAdd("DCust", "c1", "Ann", "908", "5550001")
	d.MustAdd("Cust", "c1", "Ann", "01", "908", "5550001")
	d.MustAdd("Supt", "e0", "sales", "c1")
	phi := phi0()
	set := NewSet(phi)
	if ok, err := phi.Satisfied(d, dm); err != nil || !ok {
		t.Fatalf("phi0 should hold: ok=%v err=%v", ok, err)
	}

	pre := dm.Instance("DCust").Generation()
	ins := []relation.Tuple{relation.T("c2", "Eve", "973", "5550002")}
	n, _, err := dm.ApplyBatch(relation.Batch{Inserts: map[string][]relation.Tuple{"DCust": ins}})
	if err != nil || n != 1 {
		t.Fatalf("batch: n=%d err=%v", n, err)
	}
	patches0 := obs.PDmPatches.Value()
	set.PatchMaster(dm, map[string]MasterPatch{"DCust": {PreGen: pre, Inserted: ins}})
	if got := obs.PDmPatches.Value() - patches0; got != 1 {
		t.Fatalf("patch counter delta = %d, want 1", got)
	}

	// The new customer supported in D is now covered by the patched
	// memo; the check must hit the memo, not rebuild it.
	d.MustAdd("Cust", "c2", "Eve", "01", "973", "5550002")
	d.MustAdd("Supt", "e1", "sales", "c2")
	misses0 := obs.PDmMisses.Value()
	if ok, err := phi.Satisfied(d, dm); err != nil || !ok {
		t.Fatalf("phi0 should hold after patch: ok=%v err=%v", ok, err)
	}
	if got := obs.PDmMisses.Value() - misses0; got != 0 {
		t.Fatalf("memo rebuilt despite patch (%d misses)", got)
	}

	// Contents equal a cold rebuild on a fresh constraint object.
	cold := phi0().masterCache(dm)
	warm := phi.masterCache(dm)
	if len(warm.rhs) != len(cold.rhs) {
		t.Fatalf("patched rhs size %d, cold %d", len(warm.rhs), len(cold.rhs))
	}
	for k := range cold.rhs {
		if !warm.rhs[k] {
			t.Fatalf("patched rhs missing key %q", k)
		}
	}
	if (warm.rhsIDs == nil) != (cold.rhsIDs == nil) {
		t.Fatalf("rhsIDs presence diverges: patched %v cold %v", warm.rhsIDs != nil, cold.rhsIDs != nil)
	}
	if warm.rhsIDs != nil {
		if len(warm.rhsIDs) != len(cold.rhsIDs) {
			t.Fatalf("patched rhsIDs size %d, cold %d", len(warm.rhsIDs), len(cold.rhsIDs))
		}
		for k := range cold.rhsIDs {
			if !warm.rhsIDs[k] {
				t.Fatalf("patched rhsIDs missing a key")
			}
		}
	}
}

// TestPatchMasterStaleSkips pins the generation guard: a memo that
// missed earlier mutations must not be patched forward (it would lack
// those rows); the patch is skipped and the next access rebuilds.
func TestPatchMasterStaleSkips(t *testing.T) {
	_, dm := crmSchemas()
	dm.MustAdd("DCust", "c1", "Ann", "908", "5550001")
	phi := phi0()
	set := NewSet(phi)
	phi.masterCache(dm) // warm at generation g0

	// Out-of-band mutation the memo never saw.
	dm.MustAdd("DCust", "c2", "Eve", "973", "5550002")
	pre := dm.Instance("DCust").Generation()
	ins := []relation.Tuple{relation.T("c3", "Cal", "201", "5550003")}
	if _, _, err := dm.ApplyBatch(relation.Batch{Inserts: map[string][]relation.Tuple{"DCust": ins}}); err != nil {
		t.Fatal(err)
	}
	patches0 := obs.PDmPatches.Value()
	set.PatchMaster(dm, map[string]MasterPatch{"DCust": {PreGen: pre, Inserted: ins}})
	if got := obs.PDmPatches.Value() - patches0; got != 0 {
		t.Fatalf("stale memo was patched (%d patches)", got)
	}
	// Rebuild on next access yields the full projection.
	pc := phi.masterCache(dm)
	for _, cid := range []string{"c1", "c2", "c3"} {
		if !pc.rhs[relation.T(cid).Key()] {
			t.Fatalf("rebuilt memo missing %s", cid)
		}
	}
}

// TestPatchMasterSelective pins selective invalidation: patching one
// master relation leaves constraints over other relations with their
// memo object untouched.
func TestPatchMasterSelective(t *testing.T) {
	_, dm := crmSchemas()
	dm.MustAdd("DCust", "c1", "Ann", "908", "5550001")
	phi := phi0()
	other := phi0()
	other.Name = "phi0b"
	set := NewSet(phi, other)
	phi.masterCache(dm)
	before := other.masterCache(dm)

	pre := dm.Instance("DCust").Generation()
	ins := []relation.Tuple{relation.T("c2", "Eve", "973", "5550002")}
	if _, _, err := dm.ApplyBatch(relation.Batch{Inserts: map[string][]relation.Tuple{"DCust": ins}}); err != nil {
		t.Fatal(err)
	}
	// Patch addressed to a relation neither memo projects: both stay.
	set.PatchMaster(dm, map[string]MasterPatch{"Unrelated": {PreGen: pre, Inserted: ins}})
	if other.pcache.Load() != before || phi.pcache.Load() == nil {
		t.Fatal("memo over an untouched relation was replaced")
	}
	// Patch addressed to DCust updates both constraints projecting it.
	set.PatchMaster(dm, map[string]MasterPatch{"DCust": {PreGen: pre, Inserted: ins}})
	for _, c := range set.Constraints {
		pc := c.pcache.Load()
		if pc == nil || pc.gen != dm.Instance("DCust").Generation() {
			t.Fatalf("constraint %s memo not advanced", c.Name)
		}
	}
}

// TestMasterProjectionHas pins the reuse-gate membership probe.
func TestMasterProjectionHas(t *testing.T) {
	_, dm := crmSchemas()
	dm.MustAdd("DCust", "c1", "Ann", "908", "5550001")
	phi := phi0()
	if !phi.MasterProjectionHas(dm, relation.T("c1", "Zoe", "999", "0000000")) {
		t.Fatal("projection (c1) should be present regardless of other columns")
	}
	if phi.MasterProjectionHas(dm, relation.T("c9", "Ann", "908", "5550001")) {
		t.Fatal("projection (c9) should be absent")
	}
	if phi.MasterProjectionHas(dm, relation.Tuple{}) {
		t.Fatal("short tuple should report false, not panic")
	}
	empty := New("e", phi.Q, EmptySet())
	if empty.MasterProjectionHas(dm, relation.T("c1")) {
		t.Fatal("empty-set projection has no members")
	}
}
