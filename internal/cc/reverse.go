package cc

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// Reverse containment constraints — the Section 5 "future work"
// extension of Fan & Geerts: constraints "not only from databases to
// master data, but also from the master data to the databases", i.e.
// p(Dm) ⊆ q(D). A reverse constraint makes master data a *lower* bound:
// every master fact in the projection must be derivable from D.
//
// Reverse constraints interact cleanly with the decision procedures
// because q is monotone in D: once a database satisfies p(Dm) ⊆ q(D),
// every extension does too, so the RCDP counterexample search is
// unchanged — only the partial-closure precondition and the RCQP
// witness checks gain the extra test. The package encodes a reverse
// constraint as a Constraint with the Reverse flag set; Satisfied,
// Violation and SatisfiedDelta dispatch on it.

// NewReverse builds the reverse containment constraint p(Dm) ⊆ q(D).
func NewReverse(name string, p Projection, q qlang.Query) *Constraint {
	if p.IsEmptySet() {
		// ∅ ⊆ q(D) holds vacuously; allowed but useless.
		return &Constraint{Name: name, Q: q, P: p, Reverse: true}
	}
	return &Constraint{Name: name, Q: q, P: p, Reverse: true}
}

// ReverseFromCQ is NewReverse with a CQ right-hand side.
func ReverseFromCQ(name string, p Projection, q *cq.CQ) *Constraint {
	return NewReverse(name, p, qlang.FromCQ(q))
}

// reverseViolation returns a witness tuple in p(Dm) \ q(D).
func (c *Constraint) reverseViolation(d, dm *relation.Database, g *query.Gate) (relation.Tuple, bool, error) {
	if c.P.IsEmptySet() || dm == nil {
		return nil, false, nil
	}
	in := dm.Instance(c.P.Rel)
	if in == nil {
		return nil, false, nil
	}
	rhs, err := c.Q.EvalGate(d, g)
	if err != nil {
		return nil, false, err
	}
	have := make(map[string]bool, len(rhs))
	for _, t := range rhs {
		have[t.Key()] = true
	}
	for _, t := range in.Project(c.P.Cols) {
		if !have[t.Key()] {
			return t, true, nil
		}
	}
	return nil, false, nil
}

// validateReverse checks arity agreement for a reverse constraint.
func (c *Constraint) validateReverse(dm *relation.Database) error {
	if c.P.IsEmptySet() {
		return nil
	}
	if dm == nil || dm.Schema(c.P.Rel) == nil {
		return fmt.Errorf("cc %s: reverse constraint over unknown master relation %s", c.Name, c.P.Rel)
	}
	s := dm.Schema(c.P.Rel)
	for _, col := range c.P.Cols {
		if col < 0 || col >= s.Arity() {
			return fmt.Errorf("cc %s: projection column %d out of range for %s", c.Name, col, c.P.Rel)
		}
	}
	if c.Q.Arity() != c.P.Arity() {
		return fmt.Errorf("cc %s: query arity %d vs projection arity %d", c.Name, c.Q.Arity(), c.P.Arity())
	}
	return nil
}
