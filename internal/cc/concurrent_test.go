package cc

import (
	"sync"
	"testing"

	"repro/internal/obs"
)

// The serving layer (internal/server) checks one shared constraint set
// against a pinned master database from many request goroutines at
// once, so the p(Dm) memoization (an atomic.Pointer swap keyed by
// instance identity and generation) must be safe — and effective —
// under concurrent first use. Run under -race via make race.
func TestConcurrentSatisfiedSharedSet(t *testing.T) {
	d, dm := crmSchemas()
	dm.MustAdd("DCust", "c1", "Ann", "908", "5550001")
	dm.MustAdd("DCust", "c2", "Eve", "973", "5550002")
	d.MustAdd("Cust", "c1", "Ann", "01", "908", "5550001")
	d.MustAdd("Cust", "c2", "Eve", "01", "973", "5550002")
	d.MustAdd("Supt", "e0", "sales", "c1")
	d.MustAdd("Supt", "e1", "sales", "c2")
	set := NewSet(phi0())

	hits0 := obs.PDmHits.Value()
	const goroutines = 16
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for rep := 0; rep < 50; rep++ {
				ok, err := set.Satisfied(d, dm)
				if err != nil || !ok {
					t.Errorf("goroutine %d rep %d: Satisfied = %v, %v", i, rep, ok, err)
					return
				}
			}
		}(i)
	}
	close(start)
	wg.Wait()

	// With Dm pinned, almost every check after the first must be served
	// by the memoized projection. Racing first computations may each
	// store their own copy, so require a healthy majority rather than
	// the exact count.
	if hits := obs.PDmHits.Value() - hits0; hits < goroutines*50/2 {
		t.Errorf("p(Dm) cache hits = %d out of %d checks", hits, goroutines*50)
	}
}
