// Package cc implements containment constraints (CCs) of the form
// q(D) ⊆ p(Dm), the central specification device of Fan & Geerts: q is a
// query over the database schema R in a language L_C (CQ, UCQ, ∃FO⁺, FO
// or FP) and p is a projection query over the master data schema Rm —
// or the empty set, written q ⊆ ∅. A database D is partially closed
// with respect to (Dm, V) when (D, Dm) ⊨ V.
//
// The package also implements the integrity-constraint classes of
// Section 2.2 (denial constraints, CFDs, CINDs and their traditional
// FD/IND special cases) together with the Proposition 2.1 translations
// into containment constraints.
package cc

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/fo"
	"repro/internal/obs"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// Projection is the right-hand side p of a containment constraint: a
// projection ∃x̄ Rm_i(x̄, ȳ) over one master relation, or the empty set
// (Rel == "", written q ⊆ ∅ in the paper).
type Projection struct {
	Rel  string
	Cols []int
}

// EmptySet is the right-hand side ∅.
func EmptySet() Projection { return Projection{} }

// Proj builds a projection over a master relation.
func Proj(rel string, cols ...int) Projection { return Projection{Rel: rel, Cols: cols} }

// IsEmptySet reports whether the projection denotes ∅.
func (p Projection) IsEmptySet() bool { return p.Rel == "" }

// Arity is the projection's output arity.
func (p Projection) Arity() int { return len(p.Cols) }

// Eval returns the projected tuple set over the master data, keyed for
// membership tests.
func (p Projection) Eval(dm *relation.Database) map[string]bool {
	out := make(map[string]bool)
	if p.IsEmptySet() || dm == nil {
		return out
	}
	in := dm.Instance(p.Rel)
	if in == nil {
		return out
	}
	for _, t := range in.Project(p.Cols) {
		out[t.Key()] = true
	}
	return out
}

// Values returns the sorted distinct values occurring in the projected
// columns of the master data.
func (p Projection) Values(dm *relation.Database) []relation.Value {
	seen := make(map[relation.Value]bool)
	if !p.IsEmptySet() && dm != nil {
		if in := dm.Instance(p.Rel); in != nil {
			for _, t := range in.Project(p.Cols) {
				for _, v := range t {
					seen[v] = true
				}
			}
		}
	}
	return relation.SortedValues(seen)
}

func (p Projection) String() string {
	if p.IsEmptySet() {
		return "∅"
	}
	cols := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		cols[i] = fmt.Sprintf("#%d", c)
	}
	return "π[" + strings.Join(cols, ",") + "](" + p.Rel + ")"
}

// Constraint is one containment constraint q(D) ⊆ p(Dm), or — when
// Reverse is set — the Section 5 extension p(Dm) ⊆ q(D) (see
// reverse.go).
type Constraint struct {
	Name string
	Q    qlang.Query
	P    Projection
	// Reverse flips the containment: p(Dm) ⊆ q(D).
	Reverse bool

	ind *INDShape // non-nil when the constraint is an IND (set by NewIND or DetectIND)

	// pcache memoizes the master-side projection p(Dm). Dm is immutable
	// during a Checker run, so the same set is recomputed thousands of
	// times otherwise; the cache keys on the projected instance's
	// identity and generation, so out-of-band mutation invalidates it.
	pcache atomic.Pointer[projCache]
}

// projCache is one memoized master-side projection; see masterSide.
type projCache struct {
	inst *relation.Instance
	gen  uint64
	rhs  map[string]bool
	// rhsIDs keys the same set on fixed-width interned id-keys over the
	// shared dictionary, for the integer delta path; nil when the
	// projected instance uses legacy string storage, which sends the
	// delta check back to the string engine.
	rhsIDs map[string]bool
}

// masterCache returns the memoized p(Dm) forms, keyed per (instance,
// generation). Stores race benignly under concurrent checkers: every
// store for one key holds the same set, and a lost overwrite merely
// recomputes later.
func (c *Constraint) masterCache(dm *relation.Database) *projCache {
	var in *relation.Instance
	if !c.P.IsEmptySet() && dm != nil {
		in = dm.Instance(c.P.Rel)
	}
	var gen uint64
	if in != nil {
		gen = in.Generation()
	}
	if p := c.pcache.Load(); p != nil && p.inst == in && p.gen == gen {
		obs.PDmHits.Inc()
		return p
	}
	obs.PDmMisses.Inc()
	if obs.Tracing() {
		obs.Emit("pdm_build", map[string]any{"constraint": c.Name, "rel": c.P.Rel})
	}
	pc := &projCache{inst: in, gen: gen, rhs: c.P.Eval(dm)}
	if in == nil {
		// Empty or absent master side: the id form is the empty set.
		pc.rhsIDs = map[string]bool{}
	} else if ids, ok := in.ProjectIDSet(c.P.Cols); ok {
		pc.rhsIDs = ids
	}
	c.pcache.Store(pc)
	return pc
}

// masterSide returns p(Dm) keyed on Tuple.Key (see masterCache).
func (c *Constraint) masterSide(dm *relation.Database) map[string]bool {
	return c.masterCache(dm).rhs
}

// New builds a containment constraint.
func New(name string, q qlang.Query, p Projection) *Constraint {
	c := &Constraint{Name: name, Q: q, P: p}
	c.ind = detectIND(c)
	return c
}

// FromCQ builds a CC with a CQ left-hand side.
func FromCQ(name string, q *cq.CQ, p Projection) *Constraint { return New(name, qlang.FromCQ(q), p) }

// FromUCQ builds a CC with a UCQ left-hand side.
func FromUCQ(name string, q *cq.UCQ, p Projection) *Constraint { return New(name, qlang.FromUCQ(q), p) }

// FromEFO builds a CC with an ∃FO⁺ left-hand side.
func FromEFO(name string, q *cq.EFOQuery, p Projection) *Constraint {
	return New(name, qlang.FromEFO(q), p)
}

// FromFO builds a CC with an FO left-hand side.
func FromFO(name string, q *fo.Query, p Projection) *Constraint { return New(name, qlang.FromFO(q), p) }

// FromFP builds a CC with a datalog left-hand side.
func FromFP(name string, p *datalog.Program, proj Projection) *Constraint {
	return New(name, qlang.FromFP(p), proj)
}

func (c *Constraint) String() string {
	name := c.Name
	if name != "" {
		name += ": "
	}
	if c.Reverse {
		return name + c.P.String() + " ⊆ " + c.Q.String()
	}
	return name + c.Q.String() + " ⊆ " + c.P.String()
}

// Validate checks arity agreement between the two sides.
func (c *Constraint) Validate(dm *relation.Database) error {
	if c.Reverse {
		return c.validateReverse(dm)
	}
	if c.P.IsEmptySet() {
		return nil
	}
	if dm == nil || dm.Schema(c.P.Rel) == nil {
		return fmt.Errorf("cc %s: projection over unknown master relation %s", c.Name, c.P.Rel)
	}
	s := dm.Schema(c.P.Rel)
	for _, col := range c.P.Cols {
		if col < 0 || col >= s.Arity() {
			return fmt.Errorf("cc %s: projection column %d out of range for %s", c.Name, col, c.P.Rel)
		}
	}
	if c.Q.Arity() != c.P.Arity() {
		return fmt.Errorf("cc %s: query arity %d vs projection arity %d", c.Name, c.Q.Arity(), c.P.Arity())
	}
	return nil
}

// Satisfied reports whether (D, Dm) ⊨ c.
func (c *Constraint) Satisfied(d, dm *relation.Database) (bool, error) {
	return c.SatisfiedGate(d, dm, nil)
}

// SatisfiedGate is Satisfied under gate governance: the constraint
// query evaluates through g and the gate's error is returned on
// cancellation or budget exhaustion. A nil gate is free.
func (c *Constraint) SatisfiedGate(d, dm *relation.Database, g *query.Gate) (bool, error) {
	_, viol, err := c.ViolationGate(d, dm, g)
	return !viol, err
}

// Violation returns a witness tuple in q(D) \ p(Dm) when the constraint
// is violated (or in p(Dm) \ q(D) for a reverse constraint).
func (c *Constraint) Violation(d, dm *relation.Database) (relation.Tuple, bool, error) {
	return c.ViolationGate(d, dm, nil)
}

// ViolationGate is Violation under gate governance (see SatisfiedGate).
func (c *Constraint) ViolationGate(d, dm *relation.Database, g *query.Gate) (relation.Tuple, bool, error) {
	if c.Reverse {
		return c.reverseViolation(d, dm, g)
	}
	lhs, err := c.Q.EvalGate(d, g)
	if err != nil {
		return nil, false, err
	}
	if len(lhs) == 0 {
		return nil, false, nil
	}
	rhs := c.masterSide(dm)
	for _, t := range lhs {
		if !rhs[t.Key()] {
			return t, true, nil
		}
	}
	return nil, false, nil
}

// SatisfiedDelta reports whether (D ∪ Δ, Dm) ⊨ c, assuming (D, Dm) ⊨ c
// already holds. For monotone constraint languages only the differential
// matches involving Δ are evaluated — over the D/Δ overlay, without ever
// materializing the union; FO and FP fall back to full re-evaluation
// over the union.
func (c *Constraint) SatisfiedDelta(d, delta, dm *relation.Database) (bool, error) {
	return c.SatisfiedDeltaGate(d, delta, dm, nil)
}

// SatisfiedDeltaGate is SatisfiedDelta under gate governance (see
// SatisfiedGate).
func (c *Constraint) SatisfiedDeltaGate(d, delta, dm *relation.Database, g *query.Gate) (bool, error) {
	if c.Reverse {
		// p(Dm) ⊆ q(D) is monotone in D for monotone q: extensions can
		// only add q-answers, so the precondition carries over.
		if c.Q.Lang().Monotone() {
			return true, nil
		}
		return c.satisfiedUnion(d, delta, dm, g)
	}
	if !c.Q.Lang().Monotone() {
		return c.satisfiedUnion(d, delta, dm, g)
	}
	pc := c.masterCache(dm)
	var kb []byte
	for _, t := range c.Q.Tableaux() {
		violated := false
		if pc.rhsIDs != nil {
			// Integer fast path: heads arrive as interned ids and
			// membership is one fixed-width key probe — no Binding,
			// HeadTuple or string Key per differential match.
			handled, err := t.EvalFuncDeltaIDsGate(d, delta, g, func(head []int32) bool {
				kb = relation.AppendIDKey(kb[:0], head)
				if !pc.rhsIDs[string(kb)] {
					violated = true
					return false
				}
				return true
			})
			if err != nil {
				return false, err
			}
			if handled {
				if violated {
					return false, nil
				}
				continue
			}
		}
		err := t.EvalFuncDeltaGate(d, delta, g, func(b query.Binding) bool {
			h, ok := t.HeadTuple(b)
			if !ok {
				return true
			}
			if !pc.rhs[h.Key()] {
				violated = true
				return false
			}
			return true
		})
		if err != nil {
			return false, err
		}
		if violated {
			return false, nil
		}
	}
	return true, nil
}

func (c *Constraint) satisfiedUnion(d, delta, dm *relation.Database, g *query.Gate) (bool, error) {
	return c.SatisfiedGate(d.Union(delta), dm, g)
}

// Set is a set V of containment constraints.
type Set struct {
	Constraints []*Constraint
}

// NewSet builds a constraint set.
func NewSet(cs ...*Constraint) *Set { return &Set{Constraints: cs} }

// Add appends constraints.
func (s *Set) Add(cs ...*Constraint) { s.Constraints = append(s.Constraints, cs...) }

// Len returns the number of constraints.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.Constraints)
}

// Satisfied reports whether (D, Dm) ⊨ V.
func (s *Set) Satisfied(d, dm *relation.Database) (bool, error) {
	return s.SatisfiedGate(d, dm, nil)
}

// SatisfiedGate is Satisfied under gate governance: constraint queries
// evaluate through g and the gate's error is returned on cancellation
// or budget exhaustion. A nil gate is free.
func (s *Set) SatisfiedGate(d, dm *relation.Database, g *query.Gate) (bool, error) {
	if s == nil {
		return true, nil
	}
	for _, c := range s.Constraints {
		ok, err := c.SatisfiedGate(d, dm, g)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// FirstViolation returns the first violated constraint and its witness
// tuple, if any.
func (s *Set) FirstViolation(d, dm *relation.Database) (*Constraint, relation.Tuple, bool, error) {
	if s == nil {
		return nil, nil, false, nil
	}
	for _, c := range s.Constraints {
		t, viol, err := c.Violation(d, dm)
		if err != nil {
			return nil, nil, false, err
		}
		if viol {
			return c, t, true, nil
		}
	}
	return nil, nil, false, nil
}

// SatisfiedDelta reports whether (D ∪ Δ, Dm) ⊨ V assuming (D, Dm) ⊨ V.
func (s *Set) SatisfiedDelta(d, delta, dm *relation.Database) (bool, error) {
	return s.SatisfiedDeltaGate(d, delta, dm, nil)
}

// SatisfiedDeltaGate is SatisfiedDelta under gate governance (see
// SatisfiedGate).
func (s *Set) SatisfiedDeltaGate(d, delta, dm *relation.Database, g *query.Gate) (bool, error) {
	if s == nil {
		return true, nil
	}
	for _, c := range s.Constraints {
		ok, err := c.SatisfiedDeltaGate(d, delta, dm, g)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// AllMonotone reports whether every constraint is in a monotone
// language.
func (s *Set) AllMonotone() bool {
	if s == nil {
		return true
	}
	for _, c := range s.Constraints {
		if !c.Q.Lang().Monotone() {
			return false
		}
	}
	return true
}

// AllINDs reports whether every constraint is an inclusion dependency.
func (s *Set) AllINDs() bool {
	if s == nil {
		return true
	}
	for _, c := range s.Constraints {
		if c.ind == nil || c.Reverse {
			return false
		}
	}
	return true
}

// MaxLang returns the most expressive language occurring in the set,
// in the order CQ < UCQ < ∃FO⁺ < FO < FP (FO and FP are both
// "undecidable tier"; FP reported when present).
func (s *Set) MaxLang() qlang.Lang {
	max := qlang.CQ
	if s == nil {
		return max
	}
	for _, c := range s.Constraints {
		if c.Q.Lang() > max {
			max = c.Q.Lang()
		}
	}
	return max
}

// Constants returns the sorted distinct constants occurring in the
// constraint queries.
func (s *Set) Constants() []relation.Value {
	seen := make(map[relation.Value]bool)
	if s != nil {
		for _, c := range s.Constraints {
			for _, v := range c.Q.Constants() {
				seen[v] = true
			}
		}
	}
	return relation.SortedValues(seen)
}

// Validate validates every constraint against the master data.
func (s *Set) Validate(dm *relation.Database) error {
	if s == nil {
		return nil
	}
	names := make(map[string]bool)
	for _, c := range s.Constraints {
		if c.Name != "" {
			if names[c.Name] {
				return fmt.Errorf("cc: duplicate constraint name %s", c.Name)
			}
			names[c.Name] = true
		}
		if err := c.Validate(dm); err != nil {
			return err
		}
	}
	return nil
}

func (s *Set) String() string {
	if s == nil {
		return "{}"
	}
	parts := make([]string, len(s.Constraints))
	for i, c := range s.Constraints {
		parts[i] = c.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, "\n")
}
