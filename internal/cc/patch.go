package cc

import (
	"repro/internal/obs"
	"repro/internal/relation"
)

// Incremental maintenance of the p(Dm) memo under master-data batches.
//
// The memo in Constraint.pcache keys on (instance identity, generation),
// so any out-of-band mutation already invalidates it lazily: the next
// masterCache call sees the generation mismatch and rebuilds. What that
// leaves on the table is the warm-cache property after a small
// insert-only batch — an O(|Dm|) projection rebuild for a handful of new
// rows. PatchMaster closes the gap with copy-on-write: the old memo's
// maps are cloned (they may be under concurrent read by in-flight
// checkers holding the old *projCache), the inserted tuples' projections
// are added, and the result is published at the new generation.
// Constraints whose master relation the batch does not touch keep their
// memos untouched — selective invalidation falls out of the per-instance
// generation keys.

// MasterPatch describes what one master relation received from an
// insert-only batch: the generation observed immediately before the
// batch applied, and the tuples inserted. The pre-apply generation
// guards correctness — a memo older than PreGen is missing earlier
// mutations and must rebuild, not patch.
type MasterPatch struct {
	PreGen   uint64
	Inserted []relation.Tuple
}

// PatchMaster extends the memoized master-side projections of every
// constraint whose projected relation appears in patches. Memos that
// are absent, bound to a different instance, or stale relative to
// PreGen are left alone (the next access rebuilds them). Deletions
// never patch: callers simply skip PatchMaster and the generation
// mismatch forces a rebuild.
func (s *Set) PatchMaster(dm *relation.Database, patches map[string]MasterPatch) {
	if s == nil || dm == nil || len(patches) == 0 {
		return
	}
	for _, c := range s.Constraints {
		c.patchMaster(dm, patches)
	}
}

func (c *Constraint) patchMaster(dm *relation.Database, patches map[string]MasterPatch) {
	if c.P.IsEmptySet() {
		return
	}
	patch, ok := patches[c.P.Rel]
	if !ok || len(patch.Inserted) == 0 {
		return
	}
	in := dm.Instance(c.P.Rel)
	if in == nil {
		return
	}
	old := c.pcache.Load()
	if old == nil || old.inst != in || old.gen != patch.PreGen {
		return // no memo, or stale before the batch: leave to lazy rebuild
	}
	if in.Generation() == patch.PreGen {
		return // the batch deduplicated to nothing; the memo is current
	}
	for _, t := range patch.Inserted {
		for _, col := range c.P.Cols {
			if col < 0 || col >= len(t) {
				return // malformed patch: never publish a wrong memo
			}
		}
	}
	rhs := make(map[string]bool, len(old.rhs)+len(patch.Inserted))
	for k := range old.rhs {
		rhs[k] = true
	}
	var rhsIDs map[string]bool
	if old.rhsIDs != nil {
		rhsIDs = make(map[string]bool, len(old.rhsIDs)+len(patch.Inserted))
		for k := range old.rhsIDs {
			rhsIDs[k] = true
		}
	}
	dict := relation.Shared()
	var ib []int32
	var kb []byte
	for _, t := range patch.Inserted {
		proj := t.Project(c.P.Cols)
		rhs[proj.Key()] = true
		if rhsIDs == nil {
			continue
		}
		ib = ib[:0]
		for _, v := range proj {
			id, found := dict.ID(v)
			if !found {
				// The tuple's values never reached the dictionary, so the
				// instance cannot hold it in interned form; the id memo
				// would go wrong — rebuild instead.
				return
			}
			ib = append(ib, id)
		}
		kb = relation.AppendIDKey(kb[:0], ib)
		rhsIDs[string(kb)] = true
	}
	c.pcache.Store(&projCache{inst: in, gen: in.Generation(), rhs: rhs, rhsIDs: rhsIDs})
	obs.PDmPatches.Inc()
}

// MasterProjectionHas reports whether the projection of t onto the
// constraint's master-side columns is already present in p(Dm). This is
// the membership probe behind the witness-reuse gate in internal/core:
// a master insert whose projection is already in every affected
// constraint's p(Dm) is extensionally invisible to the constraint.
// Empty-set projections and tuples too short for the projection report
// false.
func (c *Constraint) MasterProjectionHas(dm *relation.Database, t relation.Tuple) bool {
	if c.P.IsEmptySet() {
		return false
	}
	for _, col := range c.P.Cols {
		if col < 0 || col >= len(t) {
			return false
		}
	}
	return c.masterSide(dm)[t.Project(c.P.Cols).Key()]
}
