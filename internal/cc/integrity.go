package cc

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/fo"
	"repro/internal/query"
	"repro/internal/relation"
)

// This file implements the integrity-constraint classes of Section 2.2
// and their Proposition 2.1 translations into containment constraints:
// (a) denial constraints → CCs in CQ, (b) conditional functional
// dependencies (CFDs, subsuming traditional FDs) → CCs in CQ, and
// (c) conditional inclusion dependencies (CINDs, subsuming traditional
// INDs between database relations) → CCs in FO. All three need only an
// empty master relation on the right-hand side (q ⊆ ∅).

// PatternItem fixes one column to a constant, as in the φ(x̄)/ψ(ȳ)
// pattern conjunctions of CFDs and CINDs.
type PatternItem struct {
	Col int
	Val relation.Value
}

// matches reports whether the tuple observes all pattern items.
func matches(t relation.Tuple, pat []PatternItem) bool {
	for _, p := range pat {
		if t[p.Col] != p.Val {
			return false
		}
	}
	return true
}

// Denial is a denial constraint ∀x̄ ¬(R₁(x̄₁) ∧ … ∧ R_k(x̄_k) ∧ φ):
// the conjunction of atoms and built-in (in)equality predicates must
// have no match.
type Denial struct {
	Name  string
	Atoms []query.RelAtom
	Conds []query.EqAtom
}

// Holds reports whether D satisfies the denial constraint.
func (dn *Denial) Holds(d *relation.Database) bool {
	q := cq.New(dn.Name, nil, dn.Atoms, dn.Conds...)
	return !q.EvalBool(d)
}

// ToCC translates the denial constraint into a single CC in CQ with an
// empty right-hand side (Proposition 2.1(a)).
func (dn *Denial) ToCC() *Constraint {
	q := cq.New(dn.Name, nil, dn.Atoms, dn.Conds...)
	return FromCQ(dn.Name, q, EmptySet())
}

// FD is a traditional functional dependency R: X → Y over column
// positions.
type FD struct {
	Name string
	Rel  string
	From []int // X
	To   []int // Y
}

// Holds reports whether D satisfies the FD.
func (f *FD) Holds(d *relation.Database) bool {
	return f.AsCFD().Holds(d)
}

// AsCFD views the FD as a CFD with empty patterns.
func (f *FD) AsCFD() *CFD {
	return &CFD{Name: f.Name, Rel: f.Rel, From: f.From, To: f.To}
}

// ToCCs translates the FD into CCs in CQ (Proposition 2.1(b), pattern-
// free case).
func (f *FD) ToCCs(arity int) []*Constraint {
	return f.AsCFD().ToCCs(arity)
}

// CFD is a conditional functional dependency (R: X → Y, (φ(X) ∥ ψ(Y))):
// for all tuples t₁, t₂ matching the PatX pattern on X, if
// t₁[X] = t₂[X] then t₁[Y] = t₂[Y], and both observe the PatY pattern.
// Empty patterns recover the traditional FD.
type CFD struct {
	Name string
	Rel  string
	From []int // X column positions
	To   []int // Y column positions
	PatX []PatternItem
	PatY []PatternItem
}

// Holds reports whether D satisfies the CFD.
func (f *CFD) Holds(d *relation.Database) bool {
	in := d.Instance(f.Rel)
	if in == nil {
		return true
	}
	ts := in.Tuples()
	for _, t := range ts {
		if !matches(t, f.PatX) {
			continue
		}
		// Single-tuple condition: Y must observe the PatY constants.
		if !matches(t, f.PatY) {
			return false
		}
	}
	for i, t1 := range ts {
		if !matches(t1, f.PatX) {
			continue
		}
		for _, t2 := range ts[i+1:] {
			if !matches(t2, f.PatX) {
				continue
			}
			if !t1.Project(f.From).Equal(t2.Project(f.From)) {
				continue
			}
			if !t1.Project(f.To).Equal(t2.Project(f.To)) {
				return false
			}
		}
	}
	return true
}

// ToCCs translates the CFD into the two CC families of Proposition
// 2.1(b): one pair-CC per Y column forbidding two pattern-matching
// tuples that agree on X but differ on that Y column, plus one
// single-tuple CC per constant in the PatY pattern.
func (f *CFD) ToCCs(arity int) []*Constraint {
	var out []*Constraint
	mkArgs := func(prefix string) []query.Term {
		args := make([]query.Term, arity)
		for i := range args {
			args[i] = query.Var(fmt.Sprintf("%s%d", prefix, i))
		}
		return args
	}
	patConds := func(args []query.Term, pat []PatternItem) []query.EqAtom {
		var cs []query.EqAtom
		for _, p := range pat {
			cs = append(cs, query.Eq(args[p.Col], query.Const(p.Val)))
		}
		return cs
	}
	// Pair CCs: one per Y column.
	for yi, ycol := range f.To {
		a1, a2 := mkArgs("u"), mkArgs("v")
		conds := append(patConds(a1, f.PatX), patConds(a2, f.PatX)...)
		for _, x := range f.From {
			conds = append(conds, query.Eq(a1[x], a2[x]))
		}
		conds = append(conds, query.Neq(a1[ycol], a2[ycol]))
		q := cq.New(fmt.Sprintf("%s_pair_y%d", f.Name, yi), nil,
			[]query.RelAtom{{Rel: f.Rel, Args: a1}, {Rel: f.Rel, Args: a2}}, conds...)
		out = append(out, FromCQ(q.Name, q, EmptySet()))
	}
	// Single-tuple CCs: one per PatY constant.
	for pi, p := range f.PatY {
		a := mkArgs("w")
		conds := patConds(a, f.PatX)
		conds = append(conds, query.Neq(a[p.Col], query.Const(p.Val)))
		q := cq.New(fmt.Sprintf("%s_pat_y%d", f.Name, pi), nil,
			[]query.RelAtom{{Rel: f.Rel, Args: a}}, conds...)
		out = append(out, FromCQ(q.Name, q, EmptySet()))
	}
	return out
}

// CIND is a conditional inclusion dependency
// (R₁[X₁; Pat₁] ⊆ R₂[X₂; Pat₂]): for every R₁ tuple matching Pat₁
// there is an R₂ tuple agreeing on the X columns and matching Pat₂.
// Both relations belong to the database D (integrity constraints are
// posed on D regardless of master data); empty patterns recover the
// traditional IND R₁[X] ⊆ R₂[Y].
type CIND struct {
	Name string
	R1   string
	X1   []int
	Pat1 []PatternItem
	R2   string
	X2   []int
	Pat2 []PatternItem
}

// Holds reports whether D satisfies the CIND.
func (ci *CIND) Holds(d *relation.Database) bool {
	in1 := d.Instance(ci.R1)
	if in1 == nil {
		return true
	}
	in2 := d.Instance(ci.R2)
	for _, t1 := range in1.Tuples() {
		if !matches(t1, ci.Pat1) {
			continue
		}
		found := false
		if in2 != nil {
			key := t1.Project(ci.X1)
			for _, t2 := range in2.Tuples() {
				if matches(t2, ci.Pat2) && t2.Project(ci.X2).Equal(key) {
					found = true
					break
				}
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// ToCC translates the CIND into a single CC in FO with an empty right-
// hand side (Proposition 2.1(c)): the violation query
// ∃ū (R₁(ū) ∧ Pat₁(ū) ∧ ∀w̄ (¬R₂(w̄) ∨ w̄[X₂] ≠ ū[X₁] ∨ ¬Pat₂(w̄)))
// must be empty.
func (ci *CIND) ToCC(arity1, arity2 int) *Constraint {
	u := make([]query.Term, arity1)
	uNames := make([]string, arity1)
	for i := range u {
		uNames[i] = fmt.Sprintf("u%d", i)
		u[i] = query.Var(uNames[i])
	}
	w := make([]query.Term, arity2)
	wNames := make([]string, arity2)
	for i := range w {
		wNames[i] = fmt.Sprintf("w%d", i)
		w[i] = query.Var(wNames[i])
	}
	var inner []fo.Formula
	inner = append(inner, fo.FNot(fo.FAtom(ci.R2, w...)))
	for k, x2 := range ci.X2 {
		inner = append(inner, fo.FNeq(w[x2], u[ci.X1[k]]))
	}
	for _, p := range ci.Pat2 {
		inner = append(inner, fo.FNeq(w[p.Col], query.Const(p.Val)))
	}
	conj := []fo.Formula{fo.FAtom(ci.R1, u...)}
	for _, p := range ci.Pat1 {
		conj = append(conj, fo.FEq(u[p.Col], query.Const(p.Val)))
	}
	conj = append(conj, fo.FForall(wNames, fo.FOr(inner...)))
	body := fo.FExists(uNames, fo.FAnd(conj...))
	q := fo.NewQuery(ci.Name, nil, body)
	return FromFO(ci.Name, q, EmptySet())
}

// AtMostK builds the "at most k" cardinality constraint of Example 2.1
// (φ₁): no value combination of the key columns of rel may co-occur
// with more than k distinct values in the counted column. It is a CC in
// CQ with k+1 atoms sharing the key variables and pairwise-distinct
// counted variables, with empty right-hand side.
func AtMostK(name, rel string, arity int, keyCols []int, countedCol, k int) *Constraint {
	isKey := make(map[int]bool, len(keyCols))
	for _, c := range keyCols {
		isKey[c] = true
	}
	keyVar := func(col int) query.Term { return query.Var(fmt.Sprintf("k%d", col)) }
	var atoms []query.RelAtom
	var conds []query.EqAtom
	counted := make([]query.Term, k+1)
	for i := 0; i <= k; i++ {
		args := make([]query.Term, arity)
		for col := 0; col < arity; col++ {
			switch {
			case col == countedCol:
				counted[i] = query.Var(fmt.Sprintf("c%d", i))
				args[col] = counted[i]
			case isKey[col]:
				args[col] = keyVar(col)
			default:
				args[col] = query.Var(fmt.Sprintf("z%d_%d", i, col))
			}
		}
		atoms = append(atoms, query.RelAtom{Rel: rel, Args: args})
	}
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			conds = append(conds, query.Neq(counted[i], counted[j]))
		}
	}
	head := make([]query.Term, 0, len(keyCols))
	for _, c := range keyCols {
		head = append(head, keyVar(c))
	}
	q := cq.New(name, head, atoms, conds...)
	return FromCQ(name, q, EmptySet())
}
