package cc

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

// Cross-validation of constraint checking across the two storage
// representations: Satisfied and SatisfiedDeltaGate must return the
// same verdict and charge the gate identical work whether the
// databases are interned columnar or legacy string maps.

// restoreInterning re-enables interned storage after a test.
func restoreInterning(t *testing.T) {
	prev := relation.SetInterning(true)
	t.Cleanup(func() { relation.SetInterning(prev) })
}

// rebuildUnderCurrentMode reconstructs a database in fresh storage
// under the current SetInterning mode.
func rebuildUnderCurrentMode(t *testing.T, db *relation.Database) *relation.Database {
	t.Helper()
	names := db.Relations()
	ss := make([]*relation.Schema, 0, len(names))
	for _, name := range names {
		ss = append(ss, db.Schema(name))
	}
	nd := relation.NewDatabase(ss...)
	for _, name := range names {
		for _, tup := range db.Instance(name).Tuples() {
			if err := nd.Add(name, tup); err != nil {
				t.Fatalf("rebuild %s: %v", name, err)
			}
		}
	}
	return nd
}

// randomCRMCase draws a small random CRM-shaped instance: a base D, a
// delta over the same schemas, and a master DCust.
func randomCRMCase(rng *rand.Rand) (d, delta, dm *relation.Database) {
	d, dm = crmSchemas()
	delta, _ = crmSchemas()
	ids := []string{"c1", "c2", "c3"}
	ccs := []string{"01", "44"}
	id := func() string { return ids[rng.Intn(len(ids))] }
	for i, n := 0, rng.Intn(4); i < n; i++ {
		d.MustAdd("Cust", id(), "n", ccs[rng.Intn(2)], "a", "p")
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		d.MustAdd("Supt", "e1", "d1", id())
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		delta.MustAdd("Cust", id(), "n", ccs[rng.Intn(2)], "a", "p")
	}
	if rng.Intn(2) == 0 {
		delta.MustAdd("Supt", "e2", "d1", id())
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		dm.MustAdd("DCust", id(), "n", "a", "p")
	}
	return d, delta, dm
}

func TestSatisfiedInternedMatchesLegacy(t *testing.T) {
	restoreInterning(t)
	ctx := context.Background()
	set := NewSet(phi0(), AtMostK("k1", "Supt", 3, []int{2}, 0, 2))
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 250; trial++ {
		relation.SetInterning(true)
		d, delta, dm := randomCRMCase(rng)

		run := func() (bool, bool, int64, int64) {
			full, err := set.Satisfied(d.Union(delta), dm)
			if err != nil {
				t.Fatalf("trial %d: Satisfied: %v", trial, err)
			}
			g := query.NewGate(ctx, 1<<40, 1<<40)
			inc, err := set.SatisfiedDeltaGate(d, delta, dm, g)
			if err != nil {
				t.Fatalf("trial %d: SatisfiedDeltaGate: %v", trial, err)
			}
			return full, inc, g.Rows(), g.Tuples()
		}

		ifull, iinc, irows, ituples := run()
		relation.SetInterning(false)
		d, delta, dm = rebuildUnderCurrentMode(t, d), rebuildUnderCurrentMode(t, delta), rebuildUnderCurrentMode(t, dm)
		lfull, linc, lrows, ltuples := run()

		if ifull != lfull || iinc != linc {
			t.Fatalf("trial %d: verdicts diverge: interned full=%v inc=%v legacy full=%v inc=%v\nD:\n%v\ndelta:\n%v",
				trial, ifull, iinc, lfull, linc, d, delta)
		}
		if irows != lrows || ituples != ltuples {
			t.Fatalf("trial %d: gate counters diverge: interned rows=%d tuples=%d legacy rows=%d tuples=%d",
				trial, irows, ituples, lrows, ltuples)
		}
	}
}
