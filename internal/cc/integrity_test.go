package cc

import (
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

func suptDB() (*relation.Database, *relation.Database) {
	supt := relation.NewSchema("Supt",
		relation.Attr("eid"), relation.Attr("dept"), relation.Attr("cid"))
	emp := relation.NewSchema("Emp", relation.Attr("eid"), relation.Attr("dept"))
	dm := relation.NewDatabase(relation.NewSchema("Empty", relation.Attr("x")))
	return relation.NewDatabase(supt, emp), dm
}

func TestDenialTranslation(t *testing.T) {
	d, dm := suptDB()
	// Denial: no employee supports themselves: ¬(Supt(e, d, e)).
	dn := &Denial{
		Name:  "noSelf",
		Atoms: []query.RelAtom{query.Atom("Supt", v("e"), v("d"), v("c"))},
		Conds: []query.EqAtom{query.Eq(v("e"), v("c"))},
	}
	cc := dn.ToCC()
	d.MustAdd("Supt", "e0", "s", "c1")
	if !dn.Holds(d) {
		t.Fatal("denial should hold")
	}
	if ok, _ := cc.Satisfied(d, dm); !ok {
		t.Fatal("CC should hold")
	}
	d.MustAdd("Supt", "e1", "s", "e1")
	if dn.Holds(d) {
		t.Fatal("denial should fail")
	}
	if ok, _ := cc.Satisfied(d, dm); ok {
		t.Fatal("CC should fail")
	}
}

func TestFDTranslation(t *testing.T) {
	d, dm := suptDB()
	// FD: eid → dept, cid on Supt (Example 1.1).
	fd := &FD{Name: "fd", Rel: "Supt", From: []int{0}, To: []int{1, 2}}
	ccs := NewSet(fd.ToCCs(3)...)
	d.MustAdd("Supt", "e0", "s", "c1")
	d.MustAdd("Supt", "e1", "s", "c1")
	if !fd.Holds(d) {
		t.Fatal("FD should hold")
	}
	if ok, _ := ccs.Satisfied(d, dm); !ok {
		t.Fatal("CCs should hold")
	}
	d.MustAdd("Supt", "e0", "s", "c2")
	if fd.Holds(d) {
		t.Fatal("FD should fail")
	}
	if ok, _ := ccs.Satisfied(d, dm); ok {
		t.Fatal("CCs should fail")
	}
}

func TestCFDTranslation(t *testing.T) {
	d, dm := suptDB()
	// CFD of Section 2.2: dept = "BU", eid → cid.
	cfd := &CFD{
		Name: "bu", Rel: "Supt",
		From: []int{0}, To: []int{2},
		PatX: []PatternItem{{Col: 1, Val: "BU"}},
	}
	ccs := NewSet(cfd.ToCCs(3)...)
	d.MustAdd("Supt", "e0", "BU", "c1")
	d.MustAdd("Supt", "e1", "sales", "c1")
	d.MustAdd("Supt", "e1", "sales", "c2") // sales not constrained
	if !cfd.Holds(d) {
		t.Fatal("CFD should hold")
	}
	if ok, _ := ccs.Satisfied(d, dm); !ok {
		t.Fatal("CCs should hold")
	}
	d.MustAdd("Supt", "e0", "BU", "c9")
	if cfd.Holds(d) {
		t.Fatal("CFD should fail")
	}
	if ok, _ := ccs.Satisfied(d, dm); ok {
		t.Fatal("CCs should fail")
	}
}

func TestCFDWithYPattern(t *testing.T) {
	d, dm := suptDB()
	// CFD: dept = "BU", eid → cid with pattern cid = "vip".
	cfd := &CFD{
		Name: "buVip", Rel: "Supt",
		From: []int{0}, To: []int{2},
		PatX: []PatternItem{{Col: 1, Val: "BU"}},
		PatY: []PatternItem{{Col: 2, Val: "vip"}},
	}
	ccs := NewSet(cfd.ToCCs(3)...)
	d.MustAdd("Supt", "e0", "BU", "vip")
	if !cfd.Holds(d) {
		t.Fatal("CFD should hold")
	}
	if ok, _ := ccs.Satisfied(d, dm); !ok {
		t.Fatal("CCs should hold")
	}
	// Single tuple violating the Y pattern.
	d.MustAdd("Supt", "e1", "BU", "other")
	if cfd.Holds(d) {
		t.Fatal("CFD should fail on Y-pattern")
	}
	if ok, _ := ccs.Satisfied(d, dm); ok {
		t.Fatal("CCs should fail on Y-pattern")
	}
}

func TestCINDTranslation(t *testing.T) {
	d, dm := suptDB()
	// CIND: Supt[eid; dept="BU"] ⊆ Emp[eid; dept="BU"].
	ci := &CIND{
		Name: "cind", R1: "Supt", X1: []int{0},
		Pat1: []PatternItem{{Col: 1, Val: "BU"}},
		R2:   "Emp", X2: []int{0},
		Pat2: []PatternItem{{Col: 1, Val: "BU"}},
	}
	cc := ci.ToCC(3, 2)
	d.MustAdd("Emp", "e0", "BU")
	d.MustAdd("Supt", "e0", "BU", "c1")
	d.MustAdd("Supt", "e9", "sales", "c1") // unconstrained pattern
	if !ci.Holds(d) {
		t.Fatal("CIND should hold")
	}
	if ok, err := cc.Satisfied(d, dm); err != nil || !ok {
		t.Fatalf("CC should hold: %v %v", ok, err)
	}
	d.MustAdd("Supt", "e1", "BU", "c2") // e1 not a BU employee
	if ci.Holds(d) {
		t.Fatal("CIND should fail")
	}
	if ok, _ := cc.Satisfied(d, dm); ok {
		t.Fatal("CC should fail")
	}
	// Matching eid but wrong pattern on R2.
	d2, _ := suptDB()
	d2.MustAdd("Emp", "e1", "sales")
	d2.MustAdd("Supt", "e1", "BU", "c2")
	if ci.Holds(d2) {
		t.Fatal("CIND should fail on R2 pattern")
	}
	if ok, _ := cc.Satisfied(d2, dm); ok {
		t.Fatal("CC should fail on R2 pattern")
	}
}

// TestProposition21Randomized property-tests the Proposition 2.1
// equivalences on random small instances: D ⊨ φ ⇔ (D, Dm) ⊨ CC(φ).
func TestProposition21Randomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := []string{"a", "b", "c"}
	fd := &FD{Name: "fd", Rel: "Supt", From: []int{0}, To: []int{2}}
	fdCCs := NewSet(fd.ToCCs(3)...)
	cfd := &CFD{Name: "cfd", Rel: "Supt", From: []int{0}, To: []int{2},
		PatX: []PatternItem{{Col: 1, Val: "a"}}}
	cfdCCs := NewSet(cfd.ToCCs(3)...)
	ci := &CIND{Name: "ci", R1: "Supt", X1: []int{0}, R2: "Emp", X2: []int{0}}
	ciCC := ci.ToCC(3, 2)
	dn := &Denial{Name: "dn",
		Atoms: []query.RelAtom{query.Atom("Supt", v("e"), v("d"), v("c"))},
		Conds: []query.EqAtom{query.Eq(v("d"), c("c"))}}
	dnCC := dn.ToCC()

	for trial := 0; trial < 200; trial++ {
		d, dm := suptDB()
		n := rng.Intn(5)
		for i := 0; i < n; i++ {
			d.MustAdd("Supt", vals[rng.Intn(3)], vals[rng.Intn(3)], vals[rng.Intn(3)])
		}
		m := rng.Intn(3)
		for i := 0; i < m; i++ {
			d.MustAdd("Emp", vals[rng.Intn(3)], vals[rng.Intn(3)])
		}
		if got, _ := fdCCs.Satisfied(d, dm); got != fd.Holds(d) {
			t.Fatalf("trial %d: FD mismatch on\n%v", trial, d)
		}
		if got, _ := cfdCCs.Satisfied(d, dm); got != cfd.Holds(d) {
			t.Fatalf("trial %d: CFD mismatch on\n%v", trial, d)
		}
		if got, _ := ciCC.Satisfied(d, dm); got != ci.Holds(d) {
			t.Fatalf("trial %d: CIND mismatch on\n%v", trial, d)
		}
		if got, _ := dnCC.Satisfied(d, dm); got != dn.Holds(d) {
			t.Fatalf("trial %d: denial mismatch on\n%v", trial, d)
		}
	}
}
