package cc

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/fo"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// edgeFixture: database E(a,b) with master bound M(x).
func edgeFixture() (*relation.Database, *relation.Database) {
	e := relation.NewSchema("E", relation.Attr("a"), relation.Attr("b"))
	m := relation.NewSchema("M", relation.Attr("x"))
	return relation.NewDatabase(e), relation.NewDatabase(m)
}

func TestUCQConstraint(t *testing.T) {
	d, dm := edgeFixture()
	dm.MustAdd("M", "ok")
	u := cq.Union("u",
		cq.New("u1", []query.Term{v("x")}, []query.RelAtom{query.Atom("E", v("x"), v("y"))}),
		cq.New("u2", []query.Term{v("x")}, []query.RelAtom{query.Atom("E", v("y"), v("x"))}),
	)
	con := FromUCQ("u", u, Proj("M", 0))
	if con.Q.Lang() != qlang.UCQ {
		t.Fatal("lang wrong")
	}
	d.MustAdd("E", "ok", "ok")
	if ok, err := con.Satisfied(d, dm); err != nil || !ok {
		t.Fatalf("should hold: %v %v", ok, err)
	}
	d.MustAdd("E", "ok", "bad")
	if ok, _ := con.Satisfied(d, dm); ok {
		t.Fatal("second disjunct must catch the unbounded endpoint")
	}
	// Delta path agrees with full evaluation for UCQ constraints.
	d2, _ := edgeFixture()
	d2.MustAdd("E", "ok", "ok")
	delta := relation.NewDatabase(relation.NewSchema("E", relation.Attr("a"), relation.Attr("b")))
	delta.MustAdd("E", "bad", "ok")
	fast, err := NewSet(con).SatisfiedDelta(d2, delta, dm)
	if err != nil {
		t.Fatal(err)
	}
	slow, _ := NewSet(con).Satisfied(d2.Union(delta), dm)
	if fast != slow {
		t.Fatalf("delta %v vs full %v", fast, slow)
	}
}

func TestEFOConstraint(t *testing.T) {
	d, dm := edgeFixture()
	dm.MustAdd("M", "ok")
	body := cq.Or(
		cq.FAtom("E", v("x"), v("y")),
		cq.FAtom("E", v("y"), v("x")),
	)
	con := FromEFO("e", cq.NewEFO("e", []query.Term{v("x")}, body), Proj("M", 0))
	if con.Q.Lang() != qlang.EFO {
		t.Fatal("lang wrong")
	}
	if got := len(con.Q.Tableaux()); got != 2 {
		t.Fatalf("EFO expansion tableaux = %d", got)
	}
	d.MustAdd("E", "ok", "ok")
	if ok, err := con.Satisfied(d, dm); err != nil || !ok {
		t.Fatalf("should hold: %v %v", ok, err)
	}
	d.MustAdd("E", "stray", "ok")
	if ok, _ := con.Satisfied(d, dm); ok {
		t.Fatal("violation missed")
	}
}

func TestFPConstraint(t *testing.T) {
	d, dm := edgeFixture()
	dm.MustAdd("M", "ok")
	x, y, z := query.Var("X"), query.Var("Y"), query.Var("Z")
	prog := datalog.NewProgram("tc", "Ends",
		datalog.NewRule(query.Atom("TC", x, y), datalog.L("E", x, y)),
		datalog.NewRule(query.Atom("TC", x, y), datalog.L("E", x, z), datalog.L("TC", z, y)),
		datalog.NewRule(query.Atom("Ends", y), datalog.L("TC", x, y)),
	)
	con := FromFP("fp", prog, Proj("M", 0))
	if con.Q.Lang() != qlang.FP || con.Q.Arity() != 1 {
		t.Fatal("FP wrapper wrong")
	}
	// Reachable endpoints must all be the master value.
	d.MustAdd("E", "a", "ok")
	if ok, err := con.Satisfied(d, dm); err != nil || !ok {
		t.Fatalf("should hold: %v %v", ok, err)
	}
	d.MustAdd("E", "ok", "b") // transitively reaches non-master endpoint
	if ok, _ := con.Satisfied(d, dm); ok {
		t.Fatal("transitive violation missed")
	}
	set := NewSet(con)
	if set.AllMonotone() {
		t.Fatal("FP constraints take the conservative non-monotone path")
	}
	if set.MaxLang() != qlang.FP {
		t.Fatalf("MaxLang = %v", set.MaxLang())
	}
}

func TestFOConstraintDirect(t *testing.T) {
	d, dm := edgeFixture()
	// Every edge must be symmetric: violation query in FO.
	x, y := query.Var("x"), query.Var("y")
	q := fo.NewQuery("sym", nil,
		fo.FExists([]string{"x", "y"},
			fo.FAnd(fo.FAtom("E", x, y), fo.FNot(fo.FAtom("E", y, x)))))
	con := FromFO("sym", q, EmptySet())
	d.MustAdd("E", "a", "b")
	d.MustAdd("E", "b", "a")
	if ok, err := con.Satisfied(d, dm); err != nil || !ok {
		t.Fatalf("symmetric edges should hold: %v %v", ok, err)
	}
	d.MustAdd("E", "a", "c")
	if ok, _ := con.Satisfied(d, dm); ok {
		t.Fatal("asymmetry missed")
	}
}
