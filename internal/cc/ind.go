package cc

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// INDShape describes an inclusion dependency π_X(R) ⊆ p(Rm): a CC whose
// left-hand side is itself a projection query over a single relation
// (Section 2.1: "a CC q_v(R) ⊆ p(Rm) is an inclusion dependency (IND)
// when q_v is also a projection query").
type INDShape struct {
	Rel  string // database relation R
	Cols []int  // projected column positions X, in head order
}

func (s *INDShape) String() string {
	return Projection{Rel: s.Rel, Cols: s.Cols}.String()
}

// NewIND builds an IND constraint π_cols(rel) ⊆ p.
func NewIND(name, rel string, cols []int, arity int, p Projection) *Constraint {
	args := make([]query.Term, arity)
	for i := range args {
		args[i] = query.Var(fmt.Sprintf("x%d", i+1))
	}
	head := make([]query.Term, len(cols))
	for i, c := range cols {
		head[i] = args[c]
	}
	q := cq.New(name, head, []query.RelAtom{{Rel: rel, Args: args}})
	return New(name, qlang.FromCQ(q), p)
}

// IND returns the constraint's IND shape, if it has one.
func (c *Constraint) IND() (*INDShape, bool) {
	if c.ind == nil {
		return nil, false
	}
	return c.ind, true
}

// detectIND recognizes constraints whose left-hand side is a projection
// query: a single satisfiable CQ disjunct with one relation atom, no
// remaining inequalities, all-argument distinct variables, and a head
// consisting of argument variables.
func detectIND(c *Constraint) *INDShape {
	if c.Q == nil || c.Reverse || !c.Q.Lang().Monotone() {
		return nil
	}
	ts := c.Q.Tableaux()
	if len(ts) != 1 {
		return nil
	}
	t := ts[0]
	if len(t.Templates) != 1 || len(t.Diseqs) != 0 {
		return nil
	}
	atom := t.Templates[0]
	pos := make(map[string]int, len(atom.Args))
	for i, a := range atom.Args {
		if !a.IsVar {
			return nil
		}
		if _, dup := pos[a.Name]; dup {
			return nil // repeated variable = selection, not a projection
		}
		pos[a.Name] = i
	}
	cols := make([]int, len(t.Head))
	for i, h := range t.Head {
		if !h.IsVar {
			return nil
		}
		p, ok := pos[h.Name]
		if !ok {
			return nil
		}
		cols[i] = p
	}
	return &INDShape{Rel: atom.Rel, Cols: cols}
}

// BoundedColumns returns, for every database relation, the set of column
// positions covered by some IND of the set — the positions whose values
// are bounded by master data. Used by the syntactic E4 test of
// Proposition 4.3. The second result is false when the set contains a
// non-IND constraint (the syntactic test then does not apply).
func (s *Set) BoundedColumns() (map[string]map[int]bool, bool) {
	out := make(map[string]map[int]bool)
	if s == nil {
		return out, true
	}
	for _, c := range s.Constraints {
		shape, ok := c.IND()
		if !ok {
			return nil, false
		}
		if c.P.IsEmptySet() {
			// π_X(R) ⊆ ∅ forbids any R tuple at all; it does not bound
			// columns, so it contributes nothing here (the valuation
			// test handles it).
			continue
		}
		m := out[shape.Rel]
		if m == nil {
			m = make(map[int]bool)
			out[shape.Rel] = m
		}
		for _, col := range shape.Cols {
			m[col] = true
		}
	}
	return out, true
}

// INDValueBound returns, for a relation column, the sorted values
// permitted by the intersection of all INDs of the set covering that
// column, with found reporting whether any IND covers it. These are the
// only values an extension tuple may take in that column while staying
// partially closed.
func (s *Set) INDValueBound(dm *relation.Database, rel string, col int) (vals []relation.Value, found bool) {
	if s == nil {
		return nil, false
	}
	var sets []map[relation.Value]bool
	for _, c := range s.Constraints {
		shape, ok := c.IND()
		if !ok || shape.Rel != rel {
			continue
		}
		for hi, sc := range shape.Cols {
			if sc != col {
				continue
			}
			set := make(map[relation.Value]bool)
			if !c.P.IsEmptySet() {
				if in := dm.Instance(c.P.Rel); in != nil {
					for _, t := range in.Project(c.P.Cols) {
						set[t[hi]] = true
					}
				}
			}
			sets = append(sets, set)
		}
	}
	if len(sets) == 0 {
		return nil, false
	}
	inter := sets[0]
	for _, s2 := range sets[1:] {
		next := make(map[relation.Value]bool)
		for v := range inter {
			if s2[v] {
				next[v] = true
			}
		}
		inter = next
	}
	return relation.SortedValues(inter), true
}
