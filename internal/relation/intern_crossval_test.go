package relation

import (
	"math/rand"
	"testing"
)

// Cross-validation of the interned columnar Instance against the legacy
// string-map representation: an identical randomized sequence of
// mutations and queries must be observationally equivalent — same
// membership answers, same deterministic tuple order, same lookup and
// projection results, same distinct counts and active domain.

// TestInstanceInternedMatchesLegacy replays a random op script against
// one interned and one legacy instance and compares every observation.
// The script length crosses linearRowsMax and smallIndexRows so both
// the map-free linear-scan path and the map/posting paths are hit.
func TestInstanceInternedMatchesLegacy(t *testing.T) {
	prev := SetInterning(true)
	t.Cleanup(func() { SetInterning(prev) })

	s := NewSchema("R", Attr("a"), Attr("b"), Attr("c"))
	vals := []string{"u", "v", "w", "x", "y"}
	rng := rand.New(rand.NewSource(11))

	for trial := 0; trial < 40; trial++ {
		SetInterning(true)
		ii := NewInstance(s)
		SetInterning(false)
		li := NewInstance(s)
		if !ii.Interned() || li.Interned() {
			t.Fatalf("trial %d: storage modes not split: interned=%v legacy=%v", trial, ii.Interned(), li.Interned())
		}
		rt := func() Tuple {
			return Tuple{Value(vals[rng.Intn(5)]), Value(vals[rng.Intn(5)]), Value(vals[rng.Intn(5)])}
		}
		for op := 0; op < 120; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // add (duplicates included)
				tu := rt()
				ie, le := ii.Add(tu), li.Add(tu)
				if (ie == nil) != (le == nil) {
					t.Fatalf("trial %d op %d: Add(%v) errors diverge: interned=%v legacy=%v", trial, op, tu, ie, le)
				}
			case 5: // remove (often a miss)
				tu := rt()
				ii.Remove(tu)
				li.Remove(tu)
			case 6: // membership
				tu := rt()
				if ii.Contains(tu) != li.Contains(tu) {
					t.Fatalf("trial %d op %d: Contains(%v) diverges", trial, op, tu)
				}
			case 7: // lookup on a random column
				col := rng.Intn(3)
				v := Value(vals[rng.Intn(5)])
				it, lt := ii.Lookup(col, v), li.Lookup(col, v)
				if len(it) != len(lt) {
					t.Fatalf("trial %d op %d: Lookup(%d, %q) sizes diverge: %d vs %d", trial, op, col, v, len(it), len(lt))
				}
				for i := range it {
					if !it[i].Equal(lt[i]) {
						t.Fatalf("trial %d op %d: Lookup(%d, %q)[%d] diverges: %v vs %v", trial, op, col, v, i, it[i], lt[i])
					}
				}
			case 8: // distinct count on a random column
				col := rng.Intn(3)
				if ii.Distinct(col) != li.Distinct(col) {
					t.Fatalf("trial %d op %d: Distinct(%d) diverges: %d vs %d",
						trial, op, col, ii.Distinct(col), li.Distinct(col))
				}
			case 9: // projection
				cols := []int{rng.Intn(3), rng.Intn(3)}
				ip, lp := ii.Project(cols), li.Project(cols)
				if len(ip) != len(lp) {
					t.Fatalf("trial %d op %d: Project(%v) sizes diverge: %d vs %d", trial, op, cols, len(ip), len(lp))
				}
				for i := range ip {
					if !ip[i].Equal(lp[i]) {
						t.Fatalf("trial %d op %d: Project(%v)[%d] diverges: %v vs %v", trial, op, cols, i, ip[i], lp[i])
					}
				}
			}
			if ii.Len() != li.Len() {
				t.Fatalf("trial %d op %d: Len diverges: interned %d legacy %d", trial, op, ii.Len(), li.Len())
			}
		}
		// Full deterministic enumeration must coincide (interned rank
		// order vs legacy sorted order).
		it, lt := ii.Tuples(), li.Tuples()
		if len(it) != len(lt) {
			t.Fatalf("trial %d: Tuples sizes diverge: %d vs %d", trial, len(it), len(lt))
		}
		for i := range it {
			if !it[i].Equal(lt[i]) {
				t.Fatalf("trial %d: Tuples[%d] diverges: %v vs %v", trial, i, it[i], lt[i])
			}
		}
		// Clone must preserve representation and contents.
		if !ii.Clone().Equal(li) || !li.Clone().Equal(ii) {
			t.Fatalf("trial %d: clones not equal across modes", trial)
		}
	}
}

// TestDatabaseInternedMatchesLegacy checks database-level observations
// (ActiveDomain's interned bitset scan vs the legacy map path, subset
// and equality checks) across the two representations.
func TestDatabaseInternedMatchesLegacy(t *testing.T) {
	prev := SetInterning(true)
	t.Cleanup(func() { SetInterning(prev) })

	mk := func() (*Database, func(rel string, vals ...string)) {
		r := NewSchema("R", Attr("a"), Attr("b"))
		f := NewSchema("F", FinAttr("p", "0", "1"))
		db := NewDatabase(r, f)
		return db, func(rel string, vals ...string) { db.MustAdd(rel, vals...) }
	}
	rng := rand.New(rand.NewSource(23))
	vals := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 60; trial++ {
		SetInterning(true)
		idb, iadd := mk()
		SetInterning(false)
		ldb, ladd := mk()
		for i, n := 0, rng.Intn(30); i < n; i++ {
			if rng.Intn(4) == 0 {
				p := []string{"0", "1"}[rng.Intn(2)]
				iadd("F", p)
				ladd("F", p)
			} else {
				a, b := vals[rng.Intn(4)], vals[rng.Intn(4)]
				iadd("R", a, b)
				ladd("R", a, b)
			}
		}
		ia, la := idb.ActiveDomain(), ldb.ActiveDomain()
		if len(ia) != len(la) {
			t.Fatalf("trial %d: ActiveDomain sizes diverge: %d vs %d\n%v\n%v", trial, len(ia), len(la), ia, la)
		}
		for i := range ia {
			if ia[i] != la[i] {
				t.Fatalf("trial %d: ActiveDomain[%d] diverges: %q vs %q", trial, i, ia[i], la[i])
			}
		}
		if !idb.Equal(ldb) || !ldb.Equal(idb) {
			t.Fatalf("trial %d: databases not Equal across modes", trial)
		}
		if !idb.SubsetOf(ldb) || !ldb.SubsetOf(idb) {
			t.Fatalf("trial %d: SubsetOf not symmetric across modes", trial)
		}
		if idb.TupleCount() != ldb.TupleCount() {
			t.Fatalf("trial %d: TupleCount diverges: %d vs %d", trial, idb.TupleCount(), ldb.TupleCount())
		}
	}
}
