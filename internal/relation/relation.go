// Package relation provides the relational substrate used throughout the
// library: values, typed attributes with finite or infinite domains,
// relation schemas, tuples, instances and databases.
//
// The model follows Section 2.1 of Fan & Geerts, "Relative Information
// Completeness": every attribute draws its values either from a countably
// infinite domain d, or from a finite domain d_f with at least two
// elements. Instances are set-valued (no duplicates) and all iteration
// orders are deterministic, so every decision procedure built on top of
// this package is reproducible.
package relation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/obs"
)

// Value is a single database value. Values compare by string identity;
// the empty string is a legal value.
type Value string

// DomainKind distinguishes the two attribute domains of the paper.
type DomainKind uint8

const (
	// Infinite is the countably infinite domain d.
	Infinite DomainKind = iota
	// Finite is a finite domain d_f with at least two elements.
	Finite
)

// Domain describes the set of values an attribute may take. For Finite
// domains Values holds the full, sorted value set; for Infinite domains
// Values is nil.
type Domain struct {
	Kind   DomainKind
	Values []Value // sorted, unique; only for Kind == Finite
}

// InfiniteDomain returns the countably infinite domain d.
func InfiniteDomain() Domain { return Domain{Kind: Infinite} }

// FiniteDomain returns a finite domain over the given values. The values
// are deduplicated and sorted. Finite domains must contain at least two
// elements (as required by the paper); smaller domains are rejected at
// schema-validation time, not here, so tests can build degenerate cases.
func FiniteDomain(values ...Value) Domain {
	vs := append([]Value(nil), values...)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	out := vs[:0]
	var prev Value
	for i, v := range vs {
		if i == 0 || v != prev {
			out = append(out, v)
		}
		prev = v
	}
	return Domain{Kind: Finite, Values: out}
}

// Contains reports whether v belongs to the domain. Every value belongs
// to the infinite domain.
func (d Domain) Contains(v Value) bool {
	if d.Kind == Infinite {
		return true
	}
	i := sort.Search(len(d.Values), func(i int) bool { return d.Values[i] >= v })
	return i < len(d.Values) && d.Values[i] == v
}

// Equal reports whether two domains are identical.
func (d Domain) Equal(o Domain) bool {
	if d.Kind != o.Kind || len(d.Values) != len(o.Values) {
		return false
	}
	for i := range d.Values {
		if d.Values[i] != o.Values[i] {
			return false
		}
	}
	return true
}

func (d Domain) String() string {
	if d.Kind == Infinite {
		return "inf"
	}
	parts := make([]string, len(d.Values))
	for i, v := range d.Values {
		parts[i] = string(v)
	}
	return "fin{" + strings.Join(parts, ",") + "}"
}

// Attribute is a named, typed column of a relation schema.
type Attribute struct {
	Name   string
	Domain Domain
}

// Attr is shorthand for an attribute over the infinite domain.
func Attr(name string) Attribute { return Attribute{Name: name, Domain: InfiniteDomain()} }

// FinAttr is shorthand for an attribute over a finite domain.
func FinAttr(name string, values ...Value) Attribute {
	return Attribute{Name: name, Domain: FiniteDomain(values...)}
}

// Schema describes one relation: its name and typed attributes.
type Schema struct {
	Name  string
	Attrs []Attribute
}

// NewSchema builds a relation schema.
func NewSchema(name string, attrs ...Attribute) *Schema {
	return &Schema{Name: name, Attrs: attrs}
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.Attrs) }

// AttrIndex returns the position of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks structural well-formedness: nonempty name, unique
// attribute names and finite domains of size at least two.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("relation: schema with empty name")
	}
	seen := make(map[string]bool, len(s.Attrs))
	for _, a := range s.Attrs {
		if a.Name == "" {
			return fmt.Errorf("relation: schema %s has an unnamed attribute", s.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("relation: schema %s has duplicate attribute %s", s.Name, a.Name)
		}
		seen[a.Name] = true
		if a.Domain.Kind == Finite && len(a.Domain.Values) < 2 {
			return fmt.Errorf("relation: schema %s attribute %s: finite domain needs >= 2 values", s.Name, a.Name)
		}
	}
	return nil
}

func (s *Schema) String() string {
	parts := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		if a.Domain.Kind == Finite {
			parts[i] = a.Name + ":" + a.Domain.String()
		} else {
			parts[i] = a.Name
		}
	}
	return s.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Tuple is an ordered list of values.
type Tuple []Value

// Key returns a collision-free string encoding of the tuple, suitable as
// a map key. Values are joined with a separator that cannot appear
// inside a Value read from the public constructors' typical inputs; to
// stay collision-free for arbitrary values each component is
// length-prefixed.
func (t Tuple) Key() string {
	n := 0
	for _, v := range t {
		n += len(v) + 4 // value plus decimal length prefix and ':'
	}
	b := make([]byte, 0, n)
	for _, v := range t {
		b = strconv.AppendInt(b, int64(len(v)), 10)
		b = append(b, ':')
		b = append(b, string(v)...)
	}
	return string(b)
}

// Equal reports component-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Less orders tuples lexicographically.
func (t Tuple) Less(o Tuple) bool {
	for i := 0; i < len(t) && i < len(o); i++ {
		if t[i] != o[i] {
			return t[i] < o[i]
		}
	}
	return len(t) < len(o)
}

func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = string(v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// T builds a tuple from strings; a convenience for literals in tests and
// examples.
func T(vals ...string) Tuple {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		t[i] = Value(v)
	}
	return t
}

// Project returns the tuple restricted to the given column indexes.
func (t Tuple) Project(cols []int) Tuple {
	out := make(Tuple, len(cols))
	for i, c := range cols {
		out[i] = t[c]
	}
	return out
}

// Instance is a finite set of tuples over one schema. It has two
// storage modes, fixed at construction time by the SetInterning toggle:
//
//   - Interned (the default): values are interned into dense int32 ids
//     through the process-wide dictionary and rows are stored as column
//     slices (struct-of-arrays); duplicate detection keys on the
//     fixed-width id encoding and secondary indexes are sorted-rank
//     posting lists (column.go). This is the fast path the integer
//     join engine in internal/cq consumes.
//   - Legacy: the original string-keyed tuple map with per-column hash
//     indexes, kept alive behind SetInterning(false) as the
//     correctness oracle for the columnar engine.
//
// Both modes present the identical public surface and identical
// deterministic orders.
type Instance struct {
	Schema *Schema

	// Legacy string-map storage (dict == nil): Tuple.Key → tuple.
	tuples map[string]Tuple

	// Interned columnar storage (dict != nil): cols holds one dense id
	// column per attribute, rows maps a tuple's fixed-width id-key to
	// its row number, n counts rows.
	dict *Dict
	cols [][]int32
	rows map[string]int32
	n    int

	// sorted caches the deterministic tuple order; nil when dirty.
	sorted []Tuple

	// gen counts successful mutations (Add/Remove). Secondary indexes
	// and external caches key on it for invalidation.
	gen uint64

	// indexes publishes the lazily-built secondary hash indexes for the
	// generation recorded in indexSet.gen (legacy mode). Index sets are
	// built on demand, atomically swapped in, and never mutated after a
	// column slot is published, so concurrent readers of a quiescent
	// instance need no locks. Mutating an instance while others read it
	// remains forbidden, exactly as for the sorted cache.
	indexes atomic.Pointer[indexSet]

	// postings is the interned-mode counterpart of indexes: the
	// CAS-published posting-list index of column.go.
	postings atomic.Pointer[postingSet]
}

// indexSet holds one generation's per-column indexes. cols has one slot
// per attribute; slots fill in lazily as columns are first probed.
type indexSet struct {
	gen  uint64
	cols []atomic.Pointer[colIndex]
}

// colIndex maps a column value to the tuples carrying it. Buckets are
// sorted by Tuple.Less, so enumerating a bucket visits tuples in the
// same relative order as the full Instance.Tuples scan.
type colIndex struct {
	buckets map[Value][]Tuple
}

// NewInstance returns an empty instance of the schema. Its storage
// mode (interned columnar vs. legacy string map) is fixed here by the
// current SetInterning toggle and never changes afterwards.
func NewInstance(s *Schema) *Instance {
	if InterningEnabled() {
		// rows stays nil until the instance outgrows linear dedup:
		// the decision procedures build one tiny Δ-instance per
		// valuation, and for those the map (and its string keys)
		// never needs to exist.
		return &Instance{
			Schema: s,
			dict:   shared,
			cols:   make([][]int32, s.Arity()),
		}
	}
	return &Instance{Schema: s, tuples: make(map[string]Tuple)}
}

// linearRowsMax is the row count up to which an interned instance
// resolves duplicates by scanning its columns instead of keeping the
// id-key row map.
const linearRowsMax = 8

// rowOf returns the row holding exactly ids, or -1. Linear scan for
// map-less small instances.
func (in *Instance) rowOf(ids []int32) int32 {
outer:
	for r := 0; r < in.n; r++ {
		for c := range in.cols {
			if in.cols[c][r] != ids[c] {
				continue outer
			}
		}
		return int32(r)
	}
	return -1
}

// buildRows materializes the id-key row map from the columns when the
// instance outgrows linear dedup.
func (in *Instance) buildRows() {
	in.rows = make(map[string]int32, in.n+1)
	var kb [4 * inlineArity]byte
	kbuf := kb[:0]
	if len(in.cols) > inlineArity {
		kbuf = make([]byte, 0, 4*len(in.cols))
	}
	for r := 0; r < in.n; r++ {
		kbuf = kbuf[:0]
		for c := range in.cols {
			kbuf = appendID(kbuf, in.cols[c][r])
		}
		in.rows[string(kbuf)] = int32(r)
	}
}

// Interned reports whether the instance uses interned columnar storage.
func (in *Instance) Interned() bool { return in.dict != nil }

// InternDict returns the dictionary backing an interned instance, or
// nil for legacy storage.
func (in *Instance) InternDict() *Dict { return in.dict }

// Add inserts a tuple, validating arity and finite-domain membership.
// Adding a duplicate is a no-op.
func (in *Instance) Add(t Tuple) error {
	if len(t) != in.Schema.Arity() {
		return fmt.Errorf("relation: %s expects arity %d, got tuple %v", in.Schema.Name, in.Schema.Arity(), t)
	}
	for i, v := range t {
		if !in.Schema.Attrs[i].Domain.Contains(v) {
			return fmt.Errorf("relation: %s.%s: value %q outside finite domain %s",
				in.Schema.Name, in.Schema.Attrs[i].Name, v, in.Schema.Attrs[i].Domain)
		}
	}
	if in.dict != nil {
		in.addInterned(t)
		return nil
	}
	k := t.Key()
	if _, dup := in.tuples[k]; !dup {
		in.tuples[k] = t.Clone()
		in.sorted = nil
		in.gen++
	}
	return nil
}

// addInterned interns the tuple's values and appends a row unless the
// id-key already exists. The id and key scratch buffers live on the
// stack for ordinary arities, so a duplicate insert allocates nothing.
func (in *Instance) addInterned(t Tuple) {
	var ib [inlineArity]int32
	ids := ib[:0]
	if len(t) > inlineArity {
		ids = make([]int32, 0, len(t))
	}
	for _, v := range t {
		ids = append(ids, in.dict.Intern(v))
	}
	if in.rows == nil {
		if in.rowOf(ids) >= 0 {
			return
		}
		if in.n >= linearRowsMax {
			in.buildRows()
		}
	}
	if in.rows != nil {
		var kb [4 * inlineArity]byte
		key := AppendIDKey(kb[:0], ids)
		if _, dup := in.rows[string(key)]; dup {
			return
		}
		in.rows[string(key)] = int32(in.n)
	}
	for c := range in.cols {
		in.cols[c] = append(in.cols[c], ids[c])
	}
	in.n++
	in.sorted = nil
	in.gen++
}

// MustAdd is Add that panics on error; for literals in tests/examples.
func (in *Instance) MustAdd(t Tuple) {
	if err := in.Add(t); err != nil {
		panic(err)
	}
}

// Remove deletes a tuple if present.
func (in *Instance) Remove(t Tuple) {
	if in.dict != nil {
		in.removeInterned(t)
		return
	}
	k := t.Key()
	if _, ok := in.tuples[k]; ok {
		delete(in.tuples, k)
		in.sorted = nil
		in.gen++
	}
}

// removeInterned deletes a row by swapping the last row into its place
// (row numbers carry no ordering — deterministic order lives in the
// posting index's rank permutation, rebuilt per generation).
func (in *Instance) removeInterned(t Tuple) {
	if len(t) != len(in.cols) {
		return
	}
	var ib [inlineArity]int32
	ids := ib[:0]
	if len(t) > inlineArity {
		ids = make([]int32, 0, len(t))
	}
	for _, v := range t {
		id, ok := in.dict.ID(v)
		if !ok {
			return
		}
		ids = append(ids, id)
	}
	var row int32
	var kb [4 * inlineArity]byte
	if in.rows == nil {
		if row = in.rowOf(ids); row < 0 {
			return
		}
	} else {
		key := AppendIDKey(kb[:0], ids)
		r, ok := in.rows[string(key)]
		if !ok {
			return
		}
		row = r
		delete(in.rows, string(key))
	}
	last := int32(in.n - 1)
	if row != last {
		mk := kb[:0] // scratch no longer needed: rebuild as the moved row's key
		for c := range in.cols {
			in.cols[c][row] = in.cols[c][last]
			mk = appendID(mk, in.cols[c][row])
		}
		if in.rows != nil {
			in.rows[string(mk)] = row
		}
	}
	for c := range in.cols {
		in.cols[c] = in.cols[c][:last]
	}
	in.n--
	in.sorted = nil
	in.gen++
}

// Reset empties the instance in place, keeping its storage mode and —
// in interned mode — its column capacity, so a pooled scratch instance
// refills without reallocating. It counts as a mutation: any
// previously obtained view or cache is invalidated, and the usual
// no-readers-during-mutation rule applies.
func (in *Instance) Reset() {
	if in.dict != nil {
		for c := range in.cols {
			in.cols[c] = in.cols[c][:0]
		}
		in.rows = nil
		in.n = 0
	} else {
		clear(in.tuples)
	}
	in.sorted = nil
	in.gen++
}

// Reset empties every relation of the database in place; see
// Instance.Reset.
func (d *Database) Reset() {
	for _, in := range d.rels {
		in.Reset()
	}
}

// Generation returns the mutation counter. Two reads returning the same
// value bracket a span with no successful Add/Remove, so any cache built
// in between is still valid.
func (in *Instance) Generation() uint64 { return in.gen }

// Contains reports tuple membership. It is read-only in both storage
// modes (scratch buffers are stack-local), so concurrent readers of a
// quiescent instance may call it freely.
func (in *Instance) Contains(t Tuple) bool {
	if in.dict != nil {
		if len(t) != len(in.cols) {
			return false
		}
		var ib [inlineArity]int32
		ids := ib[:0]
		if len(t) > inlineArity {
			ids = make([]int32, 0, len(t))
		}
		for _, v := range t {
			id, ok := in.dict.ID(v)
			if !ok {
				return false
			}
			ids = append(ids, id)
		}
		if in.rows == nil {
			return in.rowOf(ids) >= 0
		}
		var kb [4 * inlineArity]byte
		key := AppendIDKey(kb[:0], ids)
		_, ok := in.rows[string(key)]
		return ok
	}
	_, ok := in.tuples[t.Key()]
	return ok
}

// Len returns the number of tuples.
func (in *Instance) Len() int {
	if in.dict != nil {
		return in.n
	}
	return len(in.tuples)
}

// Tuples returns all tuples in deterministic (lexicographic) order.
// The returned slice is a shared cache: callers must not modify it.
func (in *Instance) Tuples() []Tuple {
	if in.sorted == nil {
		if in.dict != nil {
			ps := in.ensurePostings()
			vals := in.dict.Snapshot()
			arity := len(in.cols)
			out := make([]Tuple, in.n)
			for k, r := range ps.rank {
				t := make(Tuple, arity)
				for c := 0; c < arity; c++ {
					t[c] = vals[in.cols[c][r]]
				}
				out[k] = t
			}
			in.sorted = out
			return in.sorted
		}
		out := make([]Tuple, 0, len(in.tuples))
		for _, t := range in.tuples {
			out = append(out, t)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
		in.sorted = out
	}
	return in.sorted
}

// Warm populates the lazily-built tuple-order cache. Index builds and
// publications are atomic, so a warmed instance can be shared read-only
// across goroutines.
func (in *Instance) Warm() { in.Tuples() }

// Lookup returns the tuples whose column col holds v, in the same
// relative order as Tuples(). The secondary index for col is built on
// first use and invalidated by Add/Remove via the generation counter.
// The returned slice is shared: callers must not modify it.
func (in *Instance) Lookup(col int, v Value) []Tuple {
	if in.dict != nil {
		return in.lookupInterned(col, v)
	}
	ci := in.index(col)
	if ci == nil {
		return nil
	}
	return ci.buckets[v]
}

// Distinct returns the number of distinct values in column col, building
// the column index if needed. It is the selectivity statistic used by
// the cost-based join planner: an equality probe on col is expected to
// match about Len/Distinct tuples.
func (in *Instance) Distinct(col int) int {
	if in.dict != nil {
		if col < 0 || col >= len(in.cols) {
			return 0
		}
		return in.IDs().Distinct(col)
	}
	ci := in.index(col)
	if ci == nil {
		return 0
	}
	return len(ci.buckets)
}

// index returns the column index for col, building and publishing it on
// first use. Publication uses compare-and-swap on shared atomic slots:
// concurrent first probes may build the same index twice, but every
// build of one generation is identical, so losing the race is benign.
func (in *Instance) index(col int) *colIndex {
	arity := in.Schema.Arity()
	if col < 0 || col >= arity {
		return nil
	}
	set := in.indexes.Load()
	if set == nil || set.gen != in.gen {
		fresh := &indexSet{gen: in.gen, cols: make([]atomic.Pointer[colIndex], arity)}
		if in.indexes.CompareAndSwap(set, fresh) {
			set = fresh
		} else if set = in.indexes.Load(); set == nil || set.gen != in.gen {
			// Lost the swap to a concurrent mutation's stale set; use
			// the private fresh set for this call only.
			set = fresh
		}
	}
	if ci := set.cols[col].Load(); ci != nil {
		return ci
	}
	ci := in.buildColIndex(col)
	set.cols[col].CompareAndSwap(nil, ci)
	if pub := set.cols[col].Load(); pub != nil {
		return pub
	}
	return ci
}

// buildColIndex materializes the value → tuples map for one column. It
// iterates the tuple map directly (not Tuples()) so concurrent index
// builds never race the sorted-cache write.
func (in *Instance) buildColIndex(col int) *colIndex {
	obs.IndexBuilds.Inc()
	buckets := make(map[Value][]Tuple)
	for _, t := range in.tuples {
		buckets[t[col]] = append(buckets[t[col]], t)
	}
	for _, b := range buckets {
		sort.Slice(b, func(i, j int) bool { return b[i].Less(b[j]) })
	}
	return &colIndex{buckets: buckets}
}

// Clone returns a deep copy sharing the schema (and, in interned mode,
// the dictionary). The copy keeps the source's storage mode regardless
// of the current SetInterning toggle.
func (in *Instance) Clone() *Instance {
	if in.dict != nil {
		cp := &Instance{
			Schema: in.Schema,
			dict:   in.dict,
			cols:   make([][]int32, len(in.cols)),
			n:      in.n,
		}
		for c := range in.cols {
			cp.cols[c] = append([]int32(nil), in.cols[c]...)
		}
		if in.rows != nil {
			cp.rows = make(map[string]int32, len(in.rows))
			for k, r := range in.rows {
				cp.rows[k] = r
			}
		}
		return cp
	}
	cp := &Instance{Schema: in.Schema, tuples: make(map[string]Tuple, len(in.tuples))}
	for k, t := range in.tuples {
		cp.tuples[k] = t
	}
	return cp
}

// forEach visits every tuple in unspecified order without touching any
// shared cache, so it is safe on instances read concurrently.
func (in *Instance) forEach(fn func(Tuple) bool) {
	if in.dict != nil {
		vals := in.dict.Snapshot()
		arity := len(in.cols)
		for r := 0; r < in.n; r++ {
			t := make(Tuple, arity)
			for c := 0; c < arity; c++ {
				t[c] = vals[in.cols[c][r]]
			}
			if !fn(t) {
				return
			}
		}
		return
	}
	for _, t := range in.tuples {
		if !fn(t) {
			return
		}
	}
}

// SubsetOf reports whether every tuple of in occurs in o. Two interned
// instances compare by id-keys directly (they share the process-wide
// dictionary); mixed modes fall back to tuple membership.
func (in *Instance) SubsetOf(o *Instance) bool {
	if in.Len() > o.Len() {
		return false
	}
	switch {
	case in.dict != nil && in.dict == o.dict && in.rows != nil && o.rows != nil:
		for k := range in.rows {
			if _, ok := o.rows[k]; !ok {
				return false
			}
		}
		return true
	case in.dict == nil && o.dict == nil:
		for k := range in.tuples {
			if _, ok := o.tuples[k]; !ok {
				return false
			}
		}
		return true
	}
	ok := true
	in.forEach(func(t Tuple) bool {
		if !o.Contains(t) {
			ok = false
		}
		return ok
	})
	return ok
}

// Equal reports set equality of the two instances.
func (in *Instance) Equal(o *Instance) bool {
	return in.Len() == o.Len() && in.SubsetOf(o)
}

// Project returns the distinct projections of all tuples onto cols.
// On interned storage duplicate detection reuses the interned ids (one
// fixed-width key probe per row against a reused scratch buffer)
// instead of materializing a projected tuple and rebuilding its string
// key per row — the former dedup hot spot of the master-side
// projections.
func (in *Instance) Project(cols []int) []Tuple {
	if in.dict != nil {
		seen := make(map[string]bool, in.n)
		vals := in.dict.Snapshot()
		out := make([]Tuple, 0, 8)
		kb := make([]byte, 0, 4*len(cols))
		for r := 0; r < in.n; r++ {
			kb = kb[:0]
			for _, c := range cols {
				kb = appendID(kb, in.cols[c][r])
			}
			if seen[string(kb)] {
				continue
			}
			seen[string(kb)] = true
			p := make(Tuple, len(cols))
			for i, c := range cols {
				p[i] = vals[in.cols[c][r]]
			}
			out = append(out, p)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
		return out
	}
	seen := make(map[string]Tuple, len(in.tuples))
	for _, t := range in.tuples {
		p := t.Project(cols)
		seen[p.Key()] = p
	}
	out := make([]Tuple, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func (in *Instance) String() string {
	var b strings.Builder
	b.WriteString(in.Schema.Name)
	b.WriteString(" {")
	for i, t := range in.Tuples() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteString("}")
	return b.String()
}

// Database is a named collection of instances — one per relation schema.
// It models both ordinary databases D over schema R and master data Dm
// over schema Rm.
type Database struct {
	rels  map[string]*Instance
	order []string // sorted relation names
}

// NewDatabase returns a database with one empty instance per schema.
func NewDatabase(schemas ...*Schema) *Database {
	d := &Database{rels: make(map[string]*Instance, len(schemas))}
	for _, s := range schemas {
		if _, dup := d.rels[s.Name]; dup {
			panic(fmt.Sprintf("relation: duplicate schema %s", s.Name))
		}
		d.rels[s.Name] = NewInstance(s)
		d.order = append(d.order, s.Name)
	}
	sort.Strings(d.order)
	return d
}

// AddSchema adds an empty instance for a new schema.
func (d *Database) AddSchema(s *Schema) {
	if _, dup := d.rels[s.Name]; dup {
		panic(fmt.Sprintf("relation: duplicate schema %s", s.Name))
	}
	d.rels[s.Name] = NewInstance(s)
	d.order = append(d.order, s.Name)
	sort.Strings(d.order)
}

// Relations returns the relation names in sorted order.
func (d *Database) Relations() []string { return d.order }

// Instance returns the instance of the named relation, or nil.
func (d *Database) Instance(name string) *Instance { return d.rels[name] }

// Schema returns the schema of the named relation, or nil.
func (d *Database) Schema(name string) *Schema {
	if in := d.rels[name]; in != nil {
		return in.Schema
	}
	return nil
}

// Add inserts a tuple into the named relation.
func (d *Database) Add(rel string, t Tuple) error {
	in := d.rels[rel]
	if in == nil {
		return fmt.Errorf("relation: unknown relation %s", rel)
	}
	return in.Add(t)
}

// MustAdd is Add that panics on error; vals are plain strings.
func (d *Database) MustAdd(rel string, vals ...string) {
	if err := d.Add(rel, T(vals...)); err != nil {
		panic(err)
	}
}

// Contains reports whether the named relation holds the tuple.
func (d *Database) Contains(rel string, t Tuple) bool {
	in := d.rels[rel]
	return in != nil && in.Contains(t)
}

// Clone returns a deep copy of the database (schemas shared).
func (d *Database) Clone() *Database {
	cp := &Database{rels: make(map[string]*Instance, len(d.rels)), order: append([]string(nil), d.order...)}
	for name, in := range d.rels {
		cp.rels[name] = in.Clone()
	}
	return cp
}

// Warm populates every instance's lazily-built tuple-order cache
// (Instance.Tuples sorts on first use). Call it before sharing the
// database read-only across goroutines: afterwards concurrent readers
// never write, so no synchronization is needed on the read path.
func (d *Database) Warm() {
	if d == nil {
		return
	}
	for _, in := range d.rels {
		in.Warm()
	}
}

// UnionInto adds all tuples of o into d. Relations of o missing from d
// are added with o's schema.
func (d *Database) UnionInto(o *Database) {
	for _, name := range o.order {
		if _, ok := d.rels[name]; !ok {
			d.AddSchema(o.rels[name].Schema)
		}
		for _, t := range o.rels[name].Tuples() {
			d.rels[name].MustAdd(t)
		}
	}
}

// Union returns a fresh database with the tuples of both.
func (d *Database) Union(o *Database) *Database {
	u := d.Clone()
	u.UnionInto(o)
	return u
}

// SubsetOf reports whether d ⊆ o: every relation of d exists in o and is
// tuple-wise contained.
func (d *Database) SubsetOf(o *Database) bool {
	for name, in := range d.rels {
		oin := o.rels[name]
		if oin == nil {
			if in.Len() > 0 {
				return false
			}
			continue
		}
		if !in.SubsetOf(oin) {
			return false
		}
	}
	return true
}

// Equal reports whether the two databases hold exactly the same tuples
// over the same relation names.
func (d *Database) Equal(o *Database) bool {
	return d.SubsetOf(o) && o.SubsetOf(d)
}

// TupleCount returns the total number of tuples across all relations.
func (d *Database) TupleCount() int {
	n := 0
	for _, in := range d.rels {
		n += in.Len()
	}
	return n
}

// IsEmpty reports whether every relation is empty.
func (d *Database) IsEmpty() bool { return d.TupleCount() == 0 }

// ActiveDomain returns the sorted set of all values occurring in d.
func (d *Database) ActiveDomain() []Value {
	if set, ok := d.InternedIDs(nil); ok {
		return shared.SortedIDValues(set)
	}
	seen := make(map[Value]bool)
	for _, in := range d.rels {
		in.valuesInto(seen)
	}
	return SortedValues(seen)
}

// InternedIDs merges the set of dictionary ids occurring anywhere in d
// into set (pass nil to start fresh) and returns it. ok is false — and
// set is returned unchanged — when some instance uses legacy storage or
// a non-shared dictionary, in which case callers must take the string
// path. A nil database contributes nothing and is ok.
func (d *Database) InternedIDs(set []uint64) ([]uint64, bool) {
	if d == nil {
		return set, true
	}
	for _, in := range d.rels {
		if in.dict != shared {
			return set, false
		}
	}
	for _, in := range d.rels {
		for _, col := range in.cols {
			for _, id := range col[:in.n] {
				set = SetIDBit(set, id)
			}
		}
	}
	return set, true
}

// InternedCol returns column col of an interned instance as raw ids in
// insertion order, or nil for legacy storage. The slice aliases the
// instance's storage: callers must not modify it and must not hold it
// across mutations.
func (in *Instance) InternedCol(col int) []int32 {
	if in.dict == nil || col < 0 || col >= len(in.cols) {
		return nil
	}
	return in.cols[col][:in.n]
}

// valuesInto adds every value occurring in the instance to seen.
func (in *Instance) valuesInto(seen map[Value]bool) {
	if in.dict != nil {
		vals := in.dict.Snapshot()
		for _, col := range in.cols {
			for _, id := range col {
				seen[vals[id]] = true
			}
		}
		return
	}
	for _, t := range in.tuples {
		for _, v := range t {
			seen[v] = true
		}
	}
}

func (d *Database) String() string {
	var b strings.Builder
	for i, name := range d.order {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(d.rels[name].String())
	}
	return b.String()
}

// SortedValues converts a value set to a sorted slice.
func SortedValues(set map[Value]bool) []Value {
	out := make([]Value, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
