package relation

import (
	"fmt"
	"strings"
	"testing"
)

// legacyKey is the pre-optimization Key() implementation (fmt.Fprintf
// into a strings.Builder), kept as the benchmark baseline; Key() was the
// hottest allocation site in the valuation search before the strconv
// rewrite.
func legacyKey(t Tuple) string {
	var b strings.Builder
	for _, v := range t {
		fmt.Fprintf(&b, "%d:", len(v))
		b.WriteString(string(v))
	}
	return b.String()
}

var benchTuples = []Tuple{
	T("c042", "name42", "01", "908", "5550042"),
	T("e07", "sales", "c042"),
	T("x", "y"),
}

func BenchmarkTupleKey(b *testing.B) {
	b.Run("strconv", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, t := range benchTuples {
				_ = t.Key()
			}
		}
	})
	b.Run("fprintf-legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, t := range benchTuples {
				_ = legacyKey(t)
			}
		}
	})
}

// TestKeyMatchesLegacy pins that the rewrite is encoding-compatible with
// the legacy implementation, so persisted keys (map layouts, goldens)
// are unchanged.
func TestKeyMatchesLegacy(t *testing.T) {
	cases := []Tuple{
		T(), T(""), T("", ""), T("a"), T("ab", "c"), T("1:a", "b"),
		T("c042", "name42", "01", "908", "5550042"),
	}
	for _, tup := range cases {
		if tup.Key() != legacyKey(tup) {
			t.Fatalf("key mismatch for %v: %q vs legacy %q", tup, tup.Key(), legacyKey(tup))
		}
	}
}
