package relation

import (
	"fmt"
	"math/rand"
	"testing"
)

// batchSchemas builds the two-relation schema pair the batch tests run
// over, including one finite-domain attribute to exercise validation.
func batchSchemas() (*Schema, *Schema) {
	r := NewSchema("R", Attr("a"), Attr("b"))
	s := NewSchema("S", Attr("b"), FinAttr("f", "0", "1"))
	return r, s
}

// TestApplyBatchMatchesModel cross-validates ApplyBatch against a plain
// map model over randomized mutation scripts, in both storage modes:
// after every batch the database must hold exactly the model's tuples,
// in the deterministic Tuples() order a scratch-built copy produces.
func TestApplyBatchMatchesModel(t *testing.T) {
	defer SetInterning(SetInterning(true))
	for _, interned := range []bool{true, false} {
		SetInterning(interned)
		rng := rand.New(rand.NewSource(41))
		rs, ss := batchSchemas()
		db := NewDatabase(rs, ss)
		model := map[string]map[string]Tuple{"R": {}, "S": {}}

		vals := []string{"a", "b", "c", "d"}
		rv := func() Value { return Value(vals[rng.Intn(len(vals))]) }
		randTuple := func(rel string) Tuple {
			if rel == "R" {
				if rng.Intn(8) == 0 {
					// Occasionally a brand-new value, so batches grow the
					// dictionary and the active domain.
					return Tuple{Value(fmt.Sprintf("n%d", rng.Intn(1000))), rv()}
				}
				return Tuple{rv(), rv()}
			}
			return Tuple{rv(), Value(fmt.Sprintf("%d", rng.Intn(2)))}
		}

		for step := 0; step < 200; step++ {
			b := Batch{Inserts: map[string][]Tuple{}, Deletes: map[string][]Tuple{}}
			for i, n := 0, rng.Intn(4); i < n; i++ {
				rel := []string{"R", "S"}[rng.Intn(2)]
				b.Inserts[rel] = append(b.Inserts[rel], randTuple(rel))
			}
			for i, n := 0, rng.Intn(3); i < n; i++ {
				rel := []string{"R", "S"}[rng.Intn(2)]
				// Mix deletes of present tuples with misses.
				if ts := db.Instance(rel).Tuples(); len(ts) > 0 && rng.Intn(2) == 0 {
					b.Deletes[rel] = append(b.Deletes[rel], ts[rng.Intn(len(ts))].Clone())
				} else {
					b.Deletes[rel] = append(b.Deletes[rel], randTuple(rel))
				}
			}
			// Warm indexes on some steps so patches hit live posting sets.
			if rng.Intn(2) == 0 {
				db.Warm()
			}

			ins, del, err := db.ApplyBatch(b)
			if err != nil {
				t.Fatalf("interned=%v step %d: %v", interned, step, err)
			}
			// Model: inserts before deletes, duplicates/misses as no-ops.
			wantIns, wantDel := 0, 0
			for rel, ts := range b.Inserts {
				for _, tu := range ts {
					if k := tu.Key(); !has(model[rel], k) {
						model[rel][k] = tu.Clone()
						wantIns++
					}
				}
			}
			for rel, ts := range b.Deletes {
				for _, tu := range ts {
					if k := tu.Key(); has(model[rel], k) {
						delete(model[rel], k)
						wantDel++
					}
				}
			}
			if ins != wantIns || del != wantDel {
				t.Fatalf("interned=%v step %d: counts (%d,%d), want (%d,%d)",
					interned, step, ins, del, wantIns, wantDel)
			}

			// Scratch-built copy is the enumeration-order oracle.
			scratch := NewDatabase(rs, ss)
			for rel, m := range model {
				for _, tu := range m {
					scratch.MustAdd(rel, tupleStrings(tu)...)
				}
			}
			for _, rel := range db.Relations() {
				got, want := db.Instance(rel).Tuples(), scratch.Instance(rel).Tuples()
				if len(got) != len(want) {
					t.Fatalf("interned=%v step %d: %s has %d tuples, want %d",
						interned, step, rel, len(got), len(want))
				}
				for i := range got {
					if !got[i].Equal(want[i]) {
						t.Fatalf("interned=%v step %d: %s tuple order diverges at %d: %v vs %v",
							interned, step, rel, i, got[i], want[i])
					}
				}
				// Lookup buckets must match the scratch build too.
				for col := 0; col < db.Schema(rel).Arity(); col++ {
					for _, tu := range want {
						g, w := db.Instance(rel).Lookup(col, tu[col]), scratch.Instance(rel).Lookup(col, tu[col])
						if len(g) != len(w) {
							t.Fatalf("interned=%v step %d: %s Lookup(%d,%q) sizes %d vs %d",
								interned, step, rel, col, tu[col], len(g), len(w))
						}
						for i := range g {
							if !g[i].Equal(w[i]) {
								t.Fatalf("interned=%v step %d: %s Lookup(%d,%q) diverges at %d",
									interned, step, rel, col, tu[col], i)
							}
						}
					}
				}
			}
		}
	}
}

func has(m map[string]Tuple, k string) bool { _, ok := m[k]; return ok }

func tupleStrings(t Tuple) []string {
	out := make([]string, len(t))
	for i, v := range t {
		out[i] = string(v)
	}
	return out
}

// TestInsertBatchPatchesPostings pins the incremental index path: an
// insert-only batch against a warmed interned instance publishes a
// merged posting set for the new generation eagerly (no cold rebuild on
// next access), and that merged set is identical to a from-scratch
// build. A batch with deletes leaves the index to the lazy rebuild.
func TestInsertBatchPatchesPostings(t *testing.T) {
	defer SetInterning(SetInterning(true))
	SetInterning(true)
	rs, ss := batchSchemas()
	db := NewDatabase(rs, ss)
	for i := 0; i < 40; i++ {
		db.MustAdd("R", fmt.Sprintf("k%02d", i%7), fmt.Sprintf("v%02d", i))
	}
	in := db.Instance("R")
	in.Warm()
	if ps := in.postings.Load(); ps == nil || ps.gen != in.gen {
		t.Fatal("warm-up did not publish a current posting set")
	}

	batch := Batch{Inserts: map[string][]Tuple{"R": {
		T("k03", "zz1"), T("aa0", "v05"), T("k03", "v03"), // duplicate of row 3+... mixed order
	}}}
	ins, _, err := db.ApplyBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if ins == 0 {
		t.Fatal("batch inserted nothing")
	}
	ps := in.postings.Load()
	if ps == nil || ps.gen != in.gen {
		t.Fatalf("insert-only batch did not publish a patched posting set (gen %d vs %d)",
			ps.gen, in.gen)
	}
	// The patched set must equal a from-scratch build, rank for rank.
	want := in.buildPostingBase()
	if len(ps.rank) != len(want.rank) {
		t.Fatalf("patched rank length %d, want %d", len(ps.rank), len(want.rank))
	}
	for i := range ps.rank {
		if ps.rank[i] != want.rank[i] {
			t.Fatalf("patched rank diverges at %d: %d vs %d", i, ps.rank[i], want.rank[i])
		}
	}
	for c := range ps.scols {
		for i := range ps.scols[c] {
			if ps.scols[c][i] != want.scols[c][i] {
				t.Fatalf("patched scols[%d] diverges at %d", c, i)
			}
		}
	}

	// Deletes invalidate: the published set goes stale and the next
	// access rebuilds at the new generation.
	if _, del, err := db.ApplyBatch(Batch{Deletes: map[string][]Tuple{"R": {T("aa0", "v05")}}}); err != nil || del != 1 {
		t.Fatalf("delete batch: del=%d err=%v", del, err)
	}
	if ps := in.postings.Load(); ps != nil && ps.gen == in.gen {
		t.Fatal("delete batch unexpectedly patched the posting set in place")
	}
	in.Warm()
	if ps := in.postings.Load(); ps == nil || ps.gen != in.gen {
		t.Fatal("posting set did not rebuild after delete batch")
	}
}

// TestApplyBatchAtomic pins validate-before-apply: a batch containing
// any malformed tuple errors out without touching the database.
func TestApplyBatchAtomic(t *testing.T) {
	defer SetInterning(SetInterning(true))
	for _, interned := range []bool{true, false} {
		SetInterning(interned)
		rs, ss := batchSchemas()
		db := NewDatabase(rs, ss)
		db.MustAdd("R", "a", "b")
		gen0 := db.Instance("R").Generation()

		cases := []Batch{
			{Inserts: map[string][]Tuple{"R": {T("x", "y")}, "Nope": {T("z")}}},
			{Inserts: map[string][]Tuple{"R": {T("x", "y"), T("too", "many", "cols")}}},
			{Inserts: map[string][]Tuple{"S": {T("b", "9")}}}, // 9 outside {0,1}
			{Inserts: map[string][]Tuple{"R": {T("x", "y")}},
				Deletes: map[string][]Tuple{"R": {T("short")}}},
		}
		for i, b := range cases {
			if _, _, err := db.ApplyBatch(b); err == nil {
				t.Fatalf("interned=%v case %d: batch unexpectedly applied", interned, i)
			}
			if db.Instance("R").Generation() != gen0 || db.Instance("R").Len() != 1 || db.Instance("S").Len() != 0 {
				t.Fatalf("interned=%v case %d: failed batch mutated the database", interned, i)
			}
		}

		// Insert-then-delete of the same fresh tuple within one batch:
		// both sides count, the net effect is absence.
		ins, del, err := db.ApplyBatch(Batch{
			Inserts: map[string][]Tuple{"R": {T("new", "row")}},
			Deletes: map[string][]Tuple{"R": {T("new", "row")}},
		})
		if err != nil || ins != 1 || del != 1 || db.Instance("R").Contains(T("new", "row")) {
			t.Fatalf("interned=%v insert+delete: ins=%d del=%d err=%v", interned, ins, del, err)
		}
	}
}
