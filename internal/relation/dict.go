package relation

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Dict is an append-only symbol table interning Values as dense int32
// ids. Ids are assigned in first-seen order and never reused, so a
// value's id is stable for the life of the process and two interned
// instances sharing a Dict can compare tuples by comparing ids.
//
// The zero Dict is not usable; construct with NewDict. Lookup paths
// take only the read lock, so concurrent readers never serialize
// against each other; Intern takes the write lock only for
// first-seen values.
type Dict struct {
	mu   sync.RWMutex
	ids  map[Value]int32
	vals []Value

	// order caches the value-sorted permutation of all ids, rebuilt
	// lazily whenever the dictionary has grown since the cached build.
	// It converges once the workload's value set stabilizes, at which
	// point every sorted-domain computation becomes an integer scan
	// instead of a string sort.
	order atomic.Pointer[dictOrder]
}

// dictOrder is one build of the dictionary's sort permutation: byRank[r]
// is the id with the r-th smallest value among the first len(byRank)
// ids.
type dictOrder struct {
	byRank []int32
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[Value]int32)}
}

// shared is the process-wide dictionary used by every interned
// instance. A single table (rather than per-database tables) keeps ids
// comparable across D, Δ-deltas and Dm, which is what lets the join
// engine and the p(Dm) memo compare keys without translating ids; the
// server's catalog entries inherit it, so cross-request caches stay
// id-compatible too.
var shared = NewDict()

// Shared returns the process-wide dictionary.
func Shared() *Dict { return shared }

// Intern returns the id of v, assigning the next dense id on first
// sight.
func (d *Dict) Intern(v Value) int32 {
	d.mu.RLock()
	id, ok := d.ids[v]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[v]; ok {
		return id
	}
	id = int32(len(d.vals))
	if id < 0 {
		panic("relation: dictionary overflow (2^31 distinct values)")
	}
	d.ids[v] = id
	d.vals = append(d.vals, v)
	obs.DictSize.Set(int64(len(d.vals)))
	return id
}

// ID returns the id of v without interning; ok is false when v has
// never been interned.
func (d *Dict) ID(v Value) (int32, bool) {
	d.mu.RLock()
	id, ok := d.ids[v]
	d.mu.RUnlock()
	return id, ok
}

// Value returns the value of an id. Ids come only from Intern, so an
// out-of-range id is a programming error.
func (d *Dict) Value(id int32) Value {
	d.mu.RLock()
	v := d.vals[id]
	d.mu.RUnlock()
	return v
}

// Len returns the number of distinct interned values.
func (d *Dict) Len() int {
	d.mu.RLock()
	n := len(d.vals)
	d.mu.RUnlock()
	return n
}

// Snapshot returns the current id → value table. The returned slice is
// an immutable prefix of the dictionary (entries are never rewritten),
// so callers may index it freely with any id obtained before the call,
// without further locking.
func (d *Dict) Snapshot() []Value {
	d.mu.RLock()
	s := d.vals
	d.mu.RUnlock()
	return s
}

// sortOrder returns a sort permutation covering every id interned so
// far, rebuilding the cache when the dictionary has grown past the last
// build. The one string sort per growth epoch is what every
// SortedIDValues call amortizes against.
func (d *Dict) sortOrder() *dictOrder {
	ord := d.order.Load()
	vals := d.Snapshot()
	if ord != nil && len(ord.byRank) == len(vals) {
		return ord
	}
	fresh := &dictOrder{byRank: make([]int32, len(vals))}
	for i := range fresh.byRank {
		fresh.byRank[i] = int32(i)
	}
	sort.Slice(fresh.byRank, func(i, j int) bool { return vals[fresh.byRank[i]] < vals[fresh.byRank[j]] })
	d.order.Store(fresh)
	return fresh
}

// SetIDBit marks id in a []uint64 bitset over dictionary ids, growing
// the slice as needed, and returns the (possibly reallocated) set.
func SetIDBit(bits []uint64, id int32) []uint64 {
	w := int(id >> 6)
	for w >= len(bits) {
		bits = append(bits, 0)
	}
	bits[w] |= 1 << (uint(id) & 63)
	return bits
}

// HasIDBit reports whether id is set in the bitset.
func HasIDBit(bits []uint64, id int32) bool {
	w := int(id >> 6)
	return w < len(bits) && bits[w]&(1<<(uint(id)&63)) != 0
}

// CountIDBits returns the number of set ids.
func CountIDBits(set []uint64) int {
	n := 0
	for _, w := range set {
		n += bits.OnesCount64(w)
	}
	return n
}

// SortedIDValues returns the values of the set ids in ascending value
// order. It scans the cached sort permutation instead of sorting, so
// after the dictionary stabilizes the cost is linear in the dictionary
// size with no string comparisons — the interned replacement for
// SortedValues on the decision procedures' Adom and relevant-value
// setup paths.
func (d *Dict) SortedIDValues(set []uint64) []Value {
	ord := d.sortOrder()
	vals := d.Snapshot()
	out := make([]Value, 0, CountIDBits(set))
	for _, id := range ord.byRank {
		if HasIDBit(set, id) {
			out = append(out, vals[id])
		}
	}
	return out
}

// interning gates interned columnar storage for newly built instances.
// When disabled (the -nointern ablation), NewInstance falls back to the
// original string-keyed tuple map, which stays alive as the correctness
// oracle for the columnar engine. The storage mode of an instance is
// fixed at construction: flipping the toggle never changes existing
// instances, it only selects the representation of instances built
// afterwards.
var interning atomic.Bool

func init() { interning.Store(true) }

// SetInterning toggles interned storage for subsequently built
// instances and returns the previous setting, so callers can restore
// it: defer relation.SetInterning(relation.SetInterning(x)).
func SetInterning(on bool) bool { return interning.Swap(on) }

// InterningEnabled reports whether new instances use interned columnar
// storage.
func InterningEnabled() bool { return interning.Load() }
