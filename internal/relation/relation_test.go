package relation

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFiniteDomain(t *testing.T) {
	d := FiniteDomain("b", "a", "b", "c")
	if len(d.Values) != 3 {
		t.Fatalf("want 3 deduped values, got %v", d.Values)
	}
	if d.Values[0] != "a" || d.Values[2] != "c" {
		t.Fatalf("not sorted: %v", d.Values)
	}
	if !d.Contains("b") || d.Contains("z") {
		t.Fatal("Contains wrong")
	}
	if !InfiniteDomain().Contains("anything") {
		t.Fatal("infinite domain must contain everything")
	}
}

func TestDomainEqual(t *testing.T) {
	if !FiniteDomain("a", "b").Equal(FiniteDomain("b", "a")) {
		t.Fatal("order-insensitive equality failed")
	}
	if FiniteDomain("a", "b").Equal(FiniteDomain("a", "c")) {
		t.Fatal("unequal domains reported equal")
	}
	if FiniteDomain("a", "b").Equal(InfiniteDomain()) {
		t.Fatal("finite equal to infinite")
	}
}

func TestSchemaValidate(t *testing.T) {
	cases := []struct {
		s  *Schema
		ok bool
	}{
		{NewSchema("R", Attr("a"), Attr("b")), true},
		{NewSchema("", Attr("a")), false},
		{NewSchema("R", Attr("a"), Attr("a")), false},
		{NewSchema("R", Attribute{Name: "a", Domain: FiniteDomain("x")}), false},
		{NewSchema("R", FinAttr("a", "0", "1")), true},
		{NewSchema("R", Attribute{Name: ""}), false},
	}
	for i, c := range cases {
		err := c.s.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate() = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestSchemaAttrIndex(t *testing.T) {
	s := NewSchema("R", Attr("x"), Attr("y"))
	if s.AttrIndex("y") != 1 || s.AttrIndex("z") != -1 {
		t.Fatal("AttrIndex wrong")
	}
	if s.Arity() != 2 {
		t.Fatal("Arity wrong")
	}
}

func TestTupleKeyCollisionFree(t *testing.T) {
	a := T("ab", "c")
	b := T("a", "bc")
	if a.Key() == b.Key() {
		t.Fatalf("key collision: %q vs %q", a.Key(), b.Key())
	}
	c := T("a:b", "c")
	d := T("a", "b:c")
	if c.Key() == d.Key() {
		t.Fatal("key collision with separator-like values")
	}
}

func TestTupleKeyQuick(t *testing.T) {
	f := func(a, b []string) bool {
		ta, tb := T(a...), T(b...)
		return (ta.Key() == tb.Key()) == ta.Equal(tb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTupleOps(t *testing.T) {
	tu := T("a", "b", "c")
	if !tu.Equal(tu.Clone()) {
		t.Fatal("clone not equal")
	}
	if tu.Equal(T("a", "b")) {
		t.Fatal("different lengths equal")
	}
	if !T("a").Less(T("b")) || T("b").Less(T("a")) {
		t.Fatal("Less wrong")
	}
	if !T("a").Less(T("a", "b")) {
		t.Fatal("prefix must be less")
	}
	p := tu.Project([]int{2, 0})
	if !p.Equal(T("c", "a")) {
		t.Fatalf("Project wrong: %v", p)
	}
	if tu.String() != "(a, b, c)" {
		t.Fatalf("String: %s", tu)
	}
}

func TestInstanceBasics(t *testing.T) {
	s := NewSchema("R", Attr("a"), FinAttr("b", "0", "1"))
	in := NewInstance(s)
	if err := in.Add(T("x", "0")); err != nil {
		t.Fatal(err)
	}
	if err := in.Add(T("x", "0")); err != nil {
		t.Fatal("duplicate add must be a no-op")
	}
	if in.Len() != 1 {
		t.Fatalf("Len = %d", in.Len())
	}
	if err := in.Add(T("x")); err == nil {
		t.Fatal("arity violation accepted")
	}
	if err := in.Add(T("x", "7")); err == nil {
		t.Fatal("finite-domain violation accepted")
	}
	if !in.Contains(T("x", "0")) || in.Contains(T("y", "0")) {
		t.Fatal("Contains wrong")
	}
	in.Remove(T("x", "0"))
	if in.Len() != 0 {
		t.Fatal("Remove failed")
	}
}

func TestInstanceDeterministicOrder(t *testing.T) {
	s := NewSchema("R", Attr("a"))
	in := NewInstance(s)
	for _, v := range []string{"c", "a", "b"} {
		in.MustAdd(T(v))
	}
	ts := in.Tuples()
	if ts[0][0] != "a" || ts[1][0] != "b" || ts[2][0] != "c" {
		t.Fatalf("order: %v", ts)
	}
}

func TestInstanceSetOps(t *testing.T) {
	s := NewSchema("R", Attr("a"))
	a, b := NewInstance(s), NewInstance(s)
	a.MustAdd(T("1"))
	b.MustAdd(T("1"))
	b.MustAdd(T("2"))
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Fatal("SubsetOf wrong")
	}
	if a.Equal(b) {
		t.Fatal("Equal wrong")
	}
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.MustAdd(T("9"))
	if a.Contains(T("9")) {
		t.Fatal("clone not deep")
	}
}

func TestInstanceProject(t *testing.T) {
	s := NewSchema("R", Attr("a"), Attr("b"))
	in := NewInstance(s)
	in.MustAdd(T("1", "x"))
	in.MustAdd(T("2", "x"))
	p := in.Project([]int{1})
	if len(p) != 1 || p[0][0] != "x" {
		t.Fatalf("Project dedup failed: %v", p)
	}
}

func TestDatabaseBasics(t *testing.T) {
	r := NewSchema("R", Attr("a"))
	sch := NewSchema("S", Attr("b"))
	d := NewDatabase(r, sch)
	d.MustAdd("R", "1")
	d.MustAdd("S", "2")
	if d.TupleCount() != 2 || d.IsEmpty() {
		t.Fatal("TupleCount wrong")
	}
	if !d.Contains("R", T("1")) || d.Contains("R", T("2")) {
		t.Fatal("Contains wrong")
	}
	if d.Instance("X") != nil || d.Schema("X") != nil {
		t.Fatal("unknown relation must be nil")
	}
	if err := d.Add("X", T("1")); err == nil {
		t.Fatal("adding to unknown relation must fail")
	}
	rels := d.Relations()
	if len(rels) != 2 || rels[0] != "R" || rels[1] != "S" {
		t.Fatalf("Relations: %v", rels)
	}
}

func TestDatabaseCloneUnionSubset(t *testing.T) {
	r := NewSchema("R", Attr("a"))
	d1 := NewDatabase(r)
	d1.MustAdd("R", "1")
	d2 := NewDatabase(r)
	d2.MustAdd("R", "2")
	u := d1.Union(d2)
	if u.TupleCount() != 2 {
		t.Fatal("Union wrong")
	}
	if !d1.SubsetOf(u) || !d2.SubsetOf(u) || u.SubsetOf(d1) {
		t.Fatal("SubsetOf wrong")
	}
	if d1.Contains("R", T("2")) {
		t.Fatal("Union mutated receiver")
	}
	cp := d1.Clone()
	cp.MustAdd("R", "9")
	if d1.Contains("R", T("9")) {
		t.Fatal("Clone not deep")
	}
	if !d1.Equal(d1.Clone()) || d1.Equal(d2) {
		t.Fatal("Equal wrong")
	}
}

func TestDatabaseUnionIntoNewRelation(t *testing.T) {
	r := NewSchema("R", Attr("a"))
	s := NewSchema("S", Attr("b"))
	d1 := NewDatabase(r)
	d2 := NewDatabase(s)
	d2.MustAdd("S", "x")
	d1.UnionInto(d2)
	if !d1.Contains("S", T("x")) {
		t.Fatal("UnionInto must add unknown relations")
	}
}

func TestActiveDomain(t *testing.T) {
	r := NewSchema("R", Attr("a"), Attr("b"))
	d := NewDatabase(r)
	d.MustAdd("R", "z", "a")
	d.MustAdd("R", "a", "m")
	ad := d.ActiveDomain()
	if len(ad) != 3 || ad[0] != "a" || ad[1] != "m" || ad[2] != "z" {
		t.Fatalf("ActiveDomain: %v", ad)
	}
}

func TestStrings(t *testing.T) {
	r := NewSchema("R", Attr("a"), FinAttr("b", "0", "1"))
	if !strings.Contains(r.String(), "fin{0,1}") {
		t.Fatalf("schema String: %s", r)
	}
	d := NewDatabase(r)
	d.MustAdd("R", "x", "1")
	if !strings.Contains(d.String(), "(x, 1)") {
		t.Fatalf("db String: %s", d)
	}
}

func TestDuplicateSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate schema")
		}
	}()
	r := NewSchema("R", Attr("a"))
	NewDatabase(r, r)
}
