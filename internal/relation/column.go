package relation

import (
	"math/bits"
	"sort"
	"sync/atomic"

	"repro/internal/obs"
)

// This file holds the columnar side of Instance: fixed-width id keys,
// the per-generation posting-list index, and the IDIndex view consumed
// by the integer join engine in internal/cq. The string-map storage in
// relation.go stays alive behind SetInterning(false) as the correctness
// oracle; everything here must be observably identical to it (tuple
// order, bucket order, distinct counts), which the cross-validation
// suites assert.

// inlineArity is the arity up to which id scratch buffers live on the
// stack; wider tuples (rare) fall back to heap slices.
const inlineArity = 16

// appendID appends the fixed-width big-endian encoding of one id.
func appendID(dst []byte, id int32) []byte {
	u := uint32(id)
	return append(dst, byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

// AppendIDKey appends the fixed-width byte encoding of an id tuple to
// dst and returns the extended slice. Each id occupies exactly four
// bytes, so the encoding is collision-free for a fixed arity and —
// unlike Tuple.Key — involves no per-value length formatting and no
// string allocation on the lookup path (map probes use the compiler's
// zero-copy m[string(b)] form). Keys are comparable across instances
// exactly when they share a Dict.
func AppendIDKey(dst []byte, ids []int32) []byte {
	for _, id := range ids {
		dst = appendID(dst, id)
	}
	return dst
}

// Bitset is a fixed-size bitmap over tuple ranks, the dense posting
// container used for high-frequency column values where a sorted rank
// array would approach the size of the column itself.
type Bitset struct {
	words []uint64
	n     int32
}

func newBitset(size int) *Bitset {
	return &Bitset{words: make([]uint64, (size+63)/64)}
}

func (b *Bitset) set(i int32) {
	w := &b.words[i>>6]
	bit := uint64(1) << (uint(i) & 63)
	if *w&bit == 0 {
		*w |= bit
		b.n++
	}
}

// Contains reports whether rank i is set.
func (b *Bitset) Contains(i int32) bool {
	return b.words[i>>6]&(uint64(1)<<(uint(i)&63)) != 0
}

// Count returns the number of set ranks.
func (b *Bitset) Count() int32 { return b.n }

// Words exposes the raw bitmap for allocation-free ascending iteration
// (rank = 64*w + trailing-zero position). Callers must not modify it.
func (b *Bitset) Words() []uint64 { return b.words }

// ForEach visits the set ranks in ascending order until fn returns
// false; it reports whether iteration ran to completion.
func (b *Bitset) ForEach(fn func(rank int32) bool) bool {
	for w, word := range b.words {
		for word != 0 {
			r := int32(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
			if !fn(r) {
				return false
			}
		}
	}
	return true
}

// postingSet is one generation's columnar index: the rank permutation
// ordering rows lexicographically (by value strings, matching
// Tuple.Less), per-column id slices in that order, and lazily built
// per-column posting containers. Like indexSet it is published with
// compare-and-swap and never mutated after a column slot fills, so
// concurrent readers of a quiescent instance need no locks.
type postingSet struct {
	gen   uint64
	rank  []int32                      // rank (sorted position) -> row
	scols [][]int32                    // [col][rank] -> id, in rank order
	cols  []atomic.Pointer[postingCol] // lazily built per-column postings
}

// postingCol holds the posting containers of one column: for each
// distinct id either a sorted rank array (sliced out of ranks) or, for
// high-frequency ids, a Bitset over ranks. Both enumerate ranks in
// ascending order, i.e. in the same relative order as the full
// Instance.Tuples scan — the property every enumeration-order-sensitive
// observation downstream relies on.
type postingCol struct {
	ids    []int32 // all distinct ids of the column, ascending
	counts []int32 // counts[i] = frequency of ids[i]
	offs   []int32 // offs[i] = start into ranks, or -1 for a Bitset
	ranks  []int32 // concatenated rank arrays of the sparse ids
	dense  map[int32]*Bitset

	// tbuckets lazily materializes value → []Tuple buckets for the
	// legacy Lookup API on interned instances (only paid when a caller
	// actually mixes the string path with columnar storage).
	tbuckets atomic.Pointer[map[Value][]Tuple]
}

// denseWorthy decides the array-vs-bitmap switch-over: a value needs
// both an absolute floor (small bitmaps never pay for themselves) and a
// density floor of 1/16 of the column (below that the rank array is
// smaller and its cache behavior better).
func denseWorthy(count int32, n int) bool {
	return count >= 64 && int(count)*16 >= n
}

// Postings is one value's posting container: either a sorted rank
// array or, when Bits is non-nil, a bitmap over ranks. N is the number
// of matching rows either way.
type Postings struct {
	Ranks []int32
	Bits  *Bitset
	N     int32
}

// ordSortMinRows is the row count above which the rank sort goes
// through per-column order codes (one string sort per distinct value
// set, then integer row comparisons) instead of comparing value strings
// per row pair. Small instances — the per-valuation Δ-deltas of the
// decision procedures — skip the order-code allocation entirely.
const ordSortMinRows = 64

// ensurePostings returns the posting set for the current generation,
// building and publishing it on first use with the same benign-race CAS
// discipline as index().
func (in *Instance) ensurePostings() *postingSet {
	set := in.postings.Load()
	if set == nil || set.gen != in.gen {
		fresh := in.buildPostingBase()
		if in.postings.CompareAndSwap(set, fresh) {
			set = fresh
		} else if set = in.postings.Load(); set == nil || set.gen != in.gen {
			// Lost the swap to a concurrent mutation's stale set; use
			// the private fresh set for this call only.
			set = fresh
		}
	}
	return set
}

// oneRank is the rank permutation shared by every single-row posting
// set.
var oneRank = []int32{0}

// buildPostingBase computes the rank permutation and rank-ordered
// column slices for the current generation. Rows are ordered by their
// value strings exactly as Tuple.Less orders materialized tuples; the
// dictionary is injective, so distinct ids always have distinct values.
//
// Instances at or below smallIndexRows never receive posting-container
// slots (ps.cols stays empty): the IDIndex view answers their probes by
// scanning, so the slots would be dead weight — and the decision
// procedures build one such instance per valuation, making every
// skipped allocation count. Single-row instances additionally alias the
// live columns instead of copying: the views are immutable-by-contract
// (readers of a mutating instance are forbidden, and the next
// generation rebuilds).
func (in *Instance) buildPostingBase() *postingSet {
	n := in.n
	arity := len(in.cols)
	if n <= 1 {
		ps := &postingSet{gen: in.gen, scols: make([][]int32, arity)}
		if n == 1 {
			ps.rank = oneRank
			for c := range ps.scols {
				ps.scols[c] = in.cols[c][:1:1]
			}
		}
		return ps
	}
	ps := &postingSet{
		gen:   in.gen,
		rank:  make([]int32, n),
		scols: make([][]int32, arity),
	}
	if n > smallIndexRows {
		ps.cols = make([]atomic.Pointer[postingCol], arity)
	}
	for r := range ps.rank {
		ps.rank[r] = int32(r)
	}
	vals := in.dict.Snapshot()
	if n > 1 && arity > 0 {
		if n < ordSortMinRows {
			sort.Slice(ps.rank, func(i, j int) bool {
				ri, rj := ps.rank[i], ps.rank[j]
				for c := 0; c < arity; c++ {
					if a, b := in.cols[c][ri], in.cols[c][rj]; a != b {
						return vals[a] < vals[b]
					}
				}
				return false
			})
		} else {
			ords := make([][]int32, arity)
			for c := 0; c < arity; c++ {
				col := in.cols[c]
				idOrd := make(map[int32]int32, 64)
				for _, id := range col {
					idOrd[id] = 0
				}
				ids := make([]int32, 0, len(idOrd))
				for id := range idOrd {
					ids = append(ids, id)
				}
				sort.Slice(ids, func(i, j int) bool { return vals[ids[i]] < vals[ids[j]] })
				for o, id := range ids {
					idOrd[id] = int32(o)
				}
				oc := make([]int32, n)
				for r, id := range col {
					oc[r] = idOrd[id]
				}
				ords[c] = oc
			}
			sort.Slice(ps.rank, func(i, j int) bool {
				ri, rj := ps.rank[i], ps.rank[j]
				for c := 0; c < arity; c++ {
					if a, b := ords[c][ri], ords[c][rj]; a != b {
						return a < b
					}
				}
				return false
			})
		}
	}
	backing := make([]int32, n*arity)
	for c := 0; c < arity; c++ {
		sc := backing[c*n : (c+1)*n : (c+1)*n]
		for k, r := range ps.rank {
			sc[k] = in.cols[c][r]
		}
		ps.scols[c] = sc
	}
	return ps
}

// postingCol returns the posting containers for col, building and
// CAS-publishing them on first use.
func (in *Instance) postingColFor(ps *postingSet, col int) *postingCol {
	if col < 0 || col >= len(ps.cols) {
		return nil
	}
	if pc := ps.cols[col].Load(); pc != nil {
		return pc
	}
	pc := buildPostingCol(ps.scols[col], in.n)
	ps.cols[col].CompareAndSwap(nil, pc)
	if pub := ps.cols[col].Load(); pub != nil {
		return pub
	}
	return pc
}

// buildPostingCol groups the rank-ordered id slice of one column into
// per-id containers. Iterating sc in ascending rank order makes every
// rank array ascending by construction.
func buildPostingCol(sc []int32, n int) *postingCol {
	obs.IndexBuilds.Inc()
	counts := make(map[int32]int32, 64)
	for _, id := range sc {
		counts[id]++
	}
	ids := make([]int32, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	pc := &postingCol{ids: ids, counts: make([]int32, len(ids)), offs: make([]int32, len(ids))}
	slot := make(map[int32]int32, len(ids))
	arrTotal := int32(0)
	for i, id := range ids {
		c := counts[id]
		pc.counts[i] = c
		slot[id] = int32(i)
		if denseWorthy(c, n) {
			pc.offs[i] = -1
			if pc.dense == nil {
				pc.dense = make(map[int32]*Bitset)
			}
			pc.dense[id] = newBitset(n)
		} else {
			pc.offs[i] = arrTotal
			arrTotal += c
		}
	}
	pc.ranks = make([]int32, arrTotal)
	cur := append([]int32(nil), pc.offs...)
	for k, id := range sc {
		i := slot[id]
		if pc.offs[i] < 0 {
			pc.dense[id].set(int32(k))
			continue
		}
		pc.ranks[cur[i]] = int32(k)
		cur[i]++
	}
	return pc
}

// postings returns the container of one id, or an empty Postings when
// the id does not occur in the column.
func (pc *postingCol) postings(id int32) Postings {
	i := sort.Search(len(pc.ids), func(i int) bool { return pc.ids[i] >= id })
	if i >= len(pc.ids) || pc.ids[i] != id {
		return Postings{}
	}
	if pc.offs[i] < 0 {
		return Postings{Bits: pc.dense[id], N: pc.counts[i]}
	}
	return Postings{Ranks: pc.ranks[pc.offs[i] : pc.offs[i]+pc.counts[i]], N: pc.counts[i]}
}

// IDIndex is the read-only interned view of an instance: row ids in
// deterministic rank order plus on-demand posting containers. The zero
// IDIndex (from a legacy instance) is invalid.
type IDIndex struct {
	in *Instance
	ps *postingSet
}

// IDs returns the interned view of the instance; the zero IDIndex when
// the instance uses legacy string-map storage.
func (in *Instance) IDs() IDIndex {
	if in.dict == nil {
		return IDIndex{}
	}
	return IDIndex{in: in, ps: in.ensurePostings()}
}

// Valid reports whether the view is backed by interned storage.
func (ix IDIndex) Valid() bool { return ix.in != nil }

// Rows returns the number of rows.
func (ix IDIndex) Rows() int { return len(ix.ps.rank) }

// Col returns column c as ids in rank (deterministic tuple) order.
// Callers must not modify it.
func (ix IDIndex) Col(c int) []int32 { return ix.ps.scols[c] }

// Postings returns the posting container of id in column c, building
// the column's containers on first use.
func (ix IDIndex) Postings(c int, id int32) Postings {
	pc := ix.in.postingColFor(ix.ps, c)
	if pc == nil {
		return Postings{}
	}
	return pc.postings(id)
}

// smallIndexRows is the row count at or below which the index view
// answers Distinct and probe enumeration by scanning the rank-ordered
// column directly: the per-valuation Δ-instances of the decision
// procedures have a handful of rows, and building posting containers
// for them (two maps plus several slices per column) costs more than
// every probe they will ever serve.
const smallIndexRows = 24

// Small reports whether the view is small enough that callers should
// probe by scanning Col instead of requesting posting containers.
func (ix IDIndex) Small() bool { return len(ix.ps.rank) <= smallIndexRows }

// Distinct returns the number of distinct ids in column c — the same
// selectivity statistic the legacy hash index reports.
func (ix IDIndex) Distinct(c int) int {
	if c < 0 || c >= len(ix.ps.scols) {
		return 0
	}
	if ix.Small() {
		sc := ix.ps.scols[c]
		n := 0
		for i, id := range sc {
			dup := false
			for j := 0; j < i; j++ {
				if sc[j] == id {
					dup = true
					break
				}
			}
			if !dup {
				n++
			}
		}
		return n
	}
	pc := ix.in.postingColFor(ix.ps, c)
	if pc == nil {
		return 0
	}
	return len(pc.ids)
}

// lookupInterned serves the legacy Lookup API on an interned instance:
// value → sorted tuple bucket. Buckets materialize lazily per column
// (CAS-published on the posting column), so the cost is only paid when
// a caller actually uses the string path against columnar storage.
func (in *Instance) lookupInterned(col int, v Value) []Tuple {
	if col < 0 || col >= len(in.cols) {
		return nil
	}
	ps := in.ensurePostings()
	pc := in.postingColFor(ps, col)
	if pc == nil {
		// Small instance without posting-container slots: materialize
		// the buckets per call, which at these sizes costs less than a
		// cache would.
		return in.buildTupleBuckets(ps, col)[v]
	}
	tb := pc.tbuckets.Load()
	if tb == nil {
		m := in.buildTupleBuckets(ps, col)
		pc.tbuckets.CompareAndSwap(nil, &m)
		tb = pc.tbuckets.Load()
		if tb == nil {
			tb = &m
		}
	}
	return (*tb)[v]
}

// buildTupleBuckets materializes value → []Tuple for one column from
// the rank-ordered columns, without touching the shared sorted cache
// (so concurrent builds never race it). Ascending rank order keeps each
// bucket sorted by Tuple.Less.
func (in *Instance) buildTupleBuckets(ps *postingSet, col int) map[Value][]Tuple {
	vals := in.dict.Snapshot()
	arity := len(in.cols)
	buckets := make(map[Value][]Tuple)
	for k := range ps.rank {
		t := make(Tuple, arity)
		for c := 0; c < arity; c++ {
			t[c] = vals[ps.scols[c][k]]
		}
		buckets[t[col]] = append(buckets[t[col]], t)
	}
	return buckets
}

// ProjectIDSet returns the set of fixed-width id-keys of the distinct
// projections of the instance onto cols; ok is false when the instance
// uses legacy storage. Keys are comparable across instances because
// every interned instance shares the process-wide dictionary — this is
// what the p(Dm) memo in internal/cc keys on.
func (in *Instance) ProjectIDSet(cols []int) (map[string]bool, bool) {
	if in.dict == nil {
		return nil, false
	}
	seen := make(map[string]bool, in.n)
	kb := make([]byte, 0, 4*len(cols))
	for r := 0; r < in.n; r++ {
		kb = kb[:0]
		for _, c := range cols {
			kb = appendID(kb, in.cols[c][r])
		}
		if !seen[string(kb)] {
			seen[string(kb)] = true
		}
	}
	return seen, true
}
