package relation

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Batch is one set of tuple insertions and deletions against a
// database, grouped per relation. ApplyBatch validates every tuple
// before any row moves, so a malformed batch leaves the database
// untouched; within a batch, inserts apply before deletes.
type Batch struct {
	Inserts map[string][]Tuple
	Deletes map[string][]Tuple
}

// Empty reports whether the batch carries no tuples at all.
func (b Batch) Empty() bool {
	for _, ts := range b.Inserts {
		if len(ts) > 0 {
			return false
		}
	}
	for _, ts := range b.Deletes {
		if len(ts) > 0 {
			return false
		}
	}
	return true
}

// InsertOnly reports whether the batch carries no deletions.
func (b Batch) InsertOnly() bool {
	for _, ts := range b.Deletes {
		if len(ts) > 0 {
			return false
		}
	}
	return true
}

// Relations returns the sorted relation names the batch touches.
func (b Batch) Relations() []string {
	seen := make(map[string]bool)
	for rel, ts := range b.Inserts {
		if len(ts) > 0 {
			seen[rel] = true
		}
	}
	for rel, ts := range b.Deletes {
		if len(ts) > 0 {
			seen[rel] = true
		}
	}
	out := make([]string, 0, len(seen))
	for rel := range seen {
		out = append(out, rel)
	}
	sort.Strings(out)
	return out
}

// ApplyBatch applies a batch of insertions and deletions. The whole
// batch is validated first — unknown relations, arity mismatches and
// finite-domain violations on inserts are errors that leave the
// database unchanged. Inserts apply before deletes, relations in
// sorted-name order; duplicate inserts and absent deletes are no-ops.
// It returns the number of rows actually added and removed.
//
// Insert-only batches against an interned instance whose posting set
// is current extend the index incrementally: the new rows merge into
// the existing rank permutation in O(n + b) instead of the O(n log n)
// rebuild a cold access would pay (see Instance.insertBatch). Like
// every mutation, ApplyBatch requires that no concurrent reader
// observes the database while it runs.
func (d *Database) ApplyBatch(b Batch) (ins, del int, err error) {
	if err := d.validateBatch(b); err != nil {
		return 0, 0, err
	}
	for _, rel := range sortedKeys(b.Inserts) {
		if ts := b.Inserts[rel]; len(ts) > 0 {
			ins += d.Instance(rel).insertBatch(ts)
		}
	}
	for _, rel := range sortedKeys(b.Deletes) {
		in := d.Instance(rel)
		before := in.Len()
		for _, t := range b.Deletes[rel] {
			in.Remove(t)
		}
		del += before - in.Len()
	}
	return ins, del, nil
}

// validateBatch checks every tuple of the batch against the database
// schemas. Inserts get the full Add validation (arity plus finite
// domains); deletes only need a known relation and the right arity —
// an out-of-domain tuple cannot be present, so deleting it is a no-op
// rather than an error.
func (d *Database) validateBatch(b Batch) error {
	for _, rel := range sortedKeys(b.Inserts) {
		in := d.Instance(rel)
		if in == nil {
			return fmt.Errorf("relation: batch insert into unknown relation %s", rel)
		}
		for _, t := range b.Inserts[rel] {
			if len(t) != in.Schema.Arity() {
				return fmt.Errorf("relation: batch insert: %s expects arity %d, got tuple %v",
					rel, in.Schema.Arity(), t)
			}
			for i, v := range t {
				if !in.Schema.Attrs[i].Domain.Contains(v) {
					return fmt.Errorf("relation: batch insert: %s.%s: value %q outside finite domain %s",
						rel, in.Schema.Attrs[i].Name, v, in.Schema.Attrs[i].Domain)
				}
			}
		}
	}
	for _, rel := range sortedKeys(b.Deletes) {
		in := d.Instance(rel)
		if in == nil {
			return fmt.Errorf("relation: batch delete from unknown relation %s", rel)
		}
		for _, t := range b.Deletes[rel] {
			if len(t) != in.Schema.Arity() {
				return fmt.Errorf("relation: batch delete: %s expects arity %d, got tuple %v",
					rel, in.Schema.Arity(), t)
			}
		}
	}
	return nil
}

func sortedKeys(m map[string][]Tuple) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// insertBatch adds pre-validated tuples and returns the number of rows
// actually inserted. When the instance is interned and its published
// posting set is current, the fresh rows are merged into the existing
// rank permutation instead of leaving the whole index to a cold
// rebuild: an insert-only batch never moves existing rows, so the old
// permutation stays a sorted prefix-set of the new one.
func (in *Instance) insertBatch(ts []Tuple) int {
	var old *postingSet
	if in.dict != nil {
		if ps := in.postings.Load(); ps != nil && ps.gen == in.gen {
			old = ps
		}
	}
	n0 := in.n
	before := in.Len()
	for _, t := range ts {
		_ = in.Add(t) // pre-validated by ApplyBatch
	}
	added := in.Len() - before
	if old != nil && added > 0 {
		in.postings.Store(in.mergePostings(old, n0))
	}
	return added
}

// mergePostings builds the posting set for the current generation by
// merging the previous generation's rank permutation (rows < n0, whose
// numbers an insert-only batch never changes) with the newly appended
// rows [n0, in.n), sorted among themselves — O((n+b)·arity) id
// comparisons instead of the O(n log n) re-sort of buildPostingBase.
// Per-column posting containers rebuild lazily on demand, as always.
func (in *Instance) mergePostings(old *postingSet, n0 int) *postingSet {
	vals := in.dict.Snapshot()
	fresh := make([]int32, in.n-n0)
	for i := range fresh {
		fresh[i] = int32(n0 + i)
	}
	sort.Slice(fresh, func(i, j int) bool { return in.rowLess(vals, fresh[i], fresh[j]) })
	rank := make([]int32, 0, in.n)
	oi, fi := 0, 0
	for oi < len(old.rank) && fi < len(fresh) {
		// The dictionary is injective and rows are deduplicated, so two
		// distinct rows never compare equal; strict less suffices.
		if in.rowLess(vals, old.rank[oi], fresh[fi]) {
			rank = append(rank, old.rank[oi])
			oi++
		} else {
			rank = append(rank, fresh[fi])
			fi++
		}
	}
	rank = append(rank, old.rank[oi:]...)
	rank = append(rank, fresh[fi:]...)
	return in.postingSetForRank(rank)
}

// rowLess orders two rows of an interned instance by their value
// strings, exactly as Tuple.Less orders the materialized tuples.
func (in *Instance) rowLess(vals []Value, r1, r2 int32) bool {
	for c := range in.cols {
		if a, b := in.cols[c][r1], in.cols[c][r2]; a != b {
			return vals[a] < vals[b]
		}
	}
	return false
}

// postingSetForRank materializes the posting set for the current
// generation from a precomputed rank permutation, following the same
// small-instance conventions as buildPostingBase (n ≤ 1 aliases the
// live columns; container slots only above smallIndexRows).
func (in *Instance) postingSetForRank(rank []int32) *postingSet {
	n, arity := in.n, len(in.cols)
	if n <= 1 {
		return in.buildPostingBase()
	}
	ps := &postingSet{gen: in.gen, rank: rank, scols: make([][]int32, arity)}
	if n > smallIndexRows {
		ps.cols = make([]atomic.Pointer[postingCol], arity)
	}
	backing := make([]int32, n*arity)
	for c := 0; c < arity; c++ {
		sc := backing[c*n : (c+1)*n : (c+1)*n]
		for k, r := range rank {
			sc[k] = in.cols[c][r]
		}
		ps.scols[c] = sc
	}
	return ps
}
