package automata

import (
	"testing"

	"repro/internal/relation"
)

// firstIsOne accepts strings whose first symbol is 1; head 2 is parked
// at position 0, so it reads the same symbol as head 1 initially.
func firstIsOne() *DFA {
	a := New(2, 0, 1)
	a.AddWild2(0, Sym1, 1, Advance)
	return a
}

// evenLength accepts strings of even length by toggling between two
// states as head 1 advances, accepting at end-of-input in the even
// state.
func evenLength() *DFA {
	a := New(3, 0, 2)
	for _, s := range []Symbol{Sym0, Sym1} {
		a.AddWild2(0, s, 1, Advance)
		a.AddWild2(1, s, 0, Advance)
	}
	a.AddWild2(0, Epsilon, 2, Stay)
	return a
}

func w(t *testing.T, s string) []Symbol {
	t.Helper()
	out, err := Word(s)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestFirstIsOne(t *testing.T) {
	a := firstIsOne()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.Accepts(w(t, "1")) || !a.Accepts(w(t, "10")) {
		t.Fatal("should accept strings starting with 1")
	}
	if a.Accepts(w(t, "0")) || a.Accepts(w(t, "01")) || a.Accepts(nil) {
		t.Fatal("should reject strings not starting with 1")
	}
}

func TestEvenLength(t *testing.T) {
	a := evenLength()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]bool{"": true, "0": false, "01": true, "110": false, "1010": true}
	for s, want := range cases {
		if got := a.Accepts(w(t, s)); got != want {
			t.Fatalf("Accepts(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestTwoHeadComparison(t *testing.T) {
	// Accept strings where w[1] equals w[0], comparing with two heads:
	// head 1 advances once (any symbol), then both heads must read the
	// same symbol.
	a := New(3, 0, 2)
	for _, s1 := range []Symbol{Sym0, Sym1} {
		for _, s2 := range []Symbol{Sym0, Sym1} {
			a.Add(0, s1, s2, 1, Advance, Stay)
		}
	}
	a.Add(1, Sym0, Sym0, 2, Stay, Stay)
	a.Add(1, Sym1, Sym1, 2, Stay, Stay)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.Accepts(w(t, "00")) || !a.Accepts(w(t, "11")) {
		t.Fatal("equal first two symbols should accept")
	}
	if a.Accepts(w(t, "01")) || a.Accepts(w(t, "10")) || a.Accepts(w(t, "1")) {
		t.Fatal("unequal or short inputs should reject")
	}
}

func TestEndOfInputEpsilon(t *testing.T) {
	// ε fires only past the input: an automaton that accepts exactly the
	// empty string.
	a := New(2, 0, 1)
	a.Add(0, Epsilon, Epsilon, 1, Stay, Stay)
	if !a.Accepts(nil) {
		t.Fatal("empty string should accept")
	}
	if a.Accepts(w(t, "0")) || a.Accepts(w(t, "1")) {
		t.Fatal("ε must not fire while symbols remain under the heads")
	}
}

func TestCycleDetection(t *testing.T) {
	// A self-looping stay-transition must not hang.
	a := New(2, 0, 1)
	for _, s1 := range []Symbol{Sym0, Sym1} {
		for _, s2 := range []Symbol{Sym0, Sym1} {
			a.Add(0, s1, s2, 0, Stay, Stay)
		}
	}
	if a.Accepts(w(t, "0")) {
		t.Fatal("looping automaton must reject")
	}
}

func TestEmptyUpTo(t *testing.T) {
	a := firstIsOne()
	acc, empty := a.EmptyUpTo(3)
	if empty {
		t.Fatal("language is nonempty")
	}
	if !a.Accepts(acc) {
		t.Fatalf("returned word %v not accepted", acc)
	}
	// Automaton with unreachable accept state.
	dead := New(2, 0, 1)
	if _, empty := dead.EmptyUpTo(4); !empty {
		t.Fatal("dead automaton must be empty up to bound")
	}
}

func TestValidateRanges(t *testing.T) {
	b := New(1, 0, 5)
	if b.Validate() == nil {
		t.Fatal("out-of-range accept state accepted")
	}
	c := New(2, 0, 1)
	c.Add(0, Sym0, Sym0, 7, Stay, Stay)
	if c.Validate() == nil {
		t.Fatal("out-of-range transition accepted")
	}
}

func TestWordErrors(t *testing.T) {
	if _, err := Word("012"); err == nil {
		t.Fatal("bad symbol accepted")
	}
	if s, err := Word("01"); err != nil || s[0] != Sym0 || s[1] != Sym1 {
		t.Fatal("Word decoding wrong")
	}
}

func TestSymbolString(t *testing.T) {
	if Sym0.String() != "0" || Sym1.String() != "1" || Epsilon.String() != "ε" {
		t.Fatal("Symbol String wrong")
	}
}

func TestEncodeString(t *testing.T) {
	d := EncodeString(w(t, "101"))
	check := func(rel string, vals ...string) {
		t.Helper()
		if !d.Contains(rel, relation.T(vals...)) {
			t.Fatalf("missing %s%v in\n%v", rel, vals, d)
		}
	}
	check("P", "0")
	check("Pbar", "1")
	check("P", "2")
	check("F", "0", "1")
	check("F", "1", "2")
	check("F", "2", "3")
	check("F", "3", "3")
	if d.Instance("P").Len() != 2 || d.Instance("Pbar").Len() != 1 || d.Instance("F").Len() != 4 {
		t.Fatalf("unexpected encoding sizes:\n%v", d)
	}
	// Empty string: one end position with a self-loop.
	e := EncodeString(nil)
	if !e.Contains("F", relation.T("0", "0")) || e.Instance("P").Len() != 0 {
		t.Fatalf("empty-string encoding wrong:\n%v", e)
	}
}
