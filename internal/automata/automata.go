// Package automata implements deterministic finite 2-head automata
// (2-head DFAs) over the alphabet {0,1}, the machine model whose
// emptiness problem drives the undecidability proofs of Theorems 3.1(3,4)
// and 4.1(1,3,4) in Fan & Geerts, following the definitions the paper
// takes from Spielmann (2000). It provides simulation with
// configuration-cycle detection, a bounded emptiness check, and the
// relational string encoding (P, P̄, F) used by the reductions.
package automata

import (
	"fmt"

	"repro/internal/relation"
)

// Symbol is an input symbol: 0, 1, or Epsilon (no read).
type Symbol int8

// Input symbols.
const (
	Sym0 Symbol = iota
	Sym1
	Epsilon
)

func (s Symbol) String() string {
	switch s {
	case Sym0:
		return "0"
	case Sym1:
		return "1"
	default:
		return "ε"
	}
}

// Move is a head movement: stay (0) or advance (+1).
type Move int8

// Head movements.
const (
	Stay    Move = 0
	Advance Move = 1
)

// TransKey identifies a transition's source: state plus the symbols
// under (or ignored by) the two heads.
type TransKey struct {
	State    int
	In1, In2 Symbol
}

// TransVal is a transition's effect: next state and head movements.
type TransVal struct {
	State        int
	Move1, Move2 Move
}

// DFA is a deterministic finite 2-head automaton
// A = (Q, Σ, δ, q₀, q_acc) with Q = {0..NumStates-1}, q₀ = Start and
// q_acc = Accept. Delta is a transition function; when several entries
// apply to a configuration the most specific wins (see Validate), so
// the machine is deterministic by construction.
type DFA struct {
	NumStates int
	Start     int
	Accept    int
	Delta     map[TransKey]TransVal
}

// New builds an automaton with no transitions.
func New(numStates, start, accept int) *DFA {
	return &DFA{NumStates: numStates, Start: start, Accept: accept, Delta: make(map[TransKey]TransVal)}
}

// Add installs a transition.
func (a *DFA) Add(state int, in1, in2 Symbol, next int, m1, m2 Move) {
	a.Delta[TransKey{state, in1, in2}] = TransVal{next, m1, m2}
}

// Validate checks state ranges. Determinism is structural: Delta is a
// transition function keyed by (state, symbol-under-head-1,
// symbol-under-head-2), where a head past the end of the input reads ε
// — following Spielmann (2000), ε is the end-of-input marker, not a
// wildcard — so every configuration has at most one successor.
func (a *DFA) Validate() error {
	if a.Start < 0 || a.Start >= a.NumStates || a.Accept < 0 || a.Accept >= a.NumStates {
		return fmt.Errorf("automata: start/accept out of range")
	}
	for k, v := range a.Delta {
		if k.State < 0 || k.State >= a.NumStates || v.State < 0 || v.State >= a.NumStates {
			return fmt.Errorf("automata: transition %v -> %v out of range", k, v)
		}
	}
	return nil
}

// config is a runtime configuration: state and the two head positions
// (0-based indexes into the input; position len(w) is end-of-input).
type config struct {
	state  int
	p1, p2 int
}

// step computes the successor configuration, if any: a single exact
// lookup on (state, symbol-or-ε, symbol-or-ε), where ε is read exactly
// when the head is past the input.
func (a *DFA) step(c config, w []Symbol) (config, bool) {
	symAt := func(p int) Symbol {
		if p < len(w) {
			return w[p]
		}
		return Epsilon
	}
	v, ok := a.Delta[TransKey{c.state, symAt(c.p1), symAt(c.p2)}]
	if !ok {
		return config{}, false
	}
	nc := config{state: v.State, p1: c.p1 + int(v.Move1), p2: c.p2 + int(v.Move2)}
	if nc.p1 > len(w) {
		nc.p1 = len(w)
	}
	if nc.p2 > len(w) {
		nc.p2 = len(w)
	}
	return nc, true
}

// AddWild2 installs a transition for every head-2 reading (0, 1 and ε)
// when head 2 is irrelevant; head 2 stays put.
func (a *DFA) AddWild2(state int, in1 Symbol, next int, m1 Move) {
	for _, s2 := range []Symbol{Sym0, Sym1, Epsilon} {
		a.Add(state, in1, s2, next, m1, Stay)
	}
}

// AddWild1 installs a transition for every head-1 reading when head 1
// is irrelevant; head 1 stays put.
func (a *DFA) AddWild1(state int, in2 Symbol, next int, m2 Move) {
	for _, s1 := range []Symbol{Sym0, Sym1, Epsilon} {
		a.Add(state, s1, in2, next, Stay, m2)
	}
}

// Accepts simulates the automaton on w. The configuration space is
// finite (|Q| × (|w|+1)²); a repeated configuration means rejection.
func (a *DFA) Accepts(w []Symbol) bool {
	c := config{state: a.Start}
	seen := map[config]bool{c: true}
	for {
		if c.state == a.Accept {
			return true
		}
		nc, ok := a.step(c, w)
		if !ok {
			return false
		}
		if seen[nc] {
			return false
		}
		seen[nc] = true
		c = nc
	}
}

// EmptyUpTo checks emptiness of L(A) over all inputs of length at most
// maxLen. It returns an accepted word (and false) when one exists. The
// emptiness problem is undecidable in general (Spielmann 2000), so this
// bounded check is the strongest decidable approximation.
func (a *DFA) EmptyUpTo(maxLen int) ([]Symbol, bool) {
	var w []Symbol
	var rec func() ([]Symbol, bool)
	rec = func() ([]Symbol, bool) {
		if a.Accepts(w) {
			return append([]Symbol(nil), w...), false
		}
		if len(w) == maxLen {
			return nil, true
		}
		for _, s := range []Symbol{Sym0, Sym1} {
			w = append(w, s)
			if acc, empty := rec(); !empty {
				return acc, false
			}
			w = w[:len(w)-1]
		}
		return nil, true
	}
	return rec()
}

// Word converts a 0/1 string to symbols.
func Word(s string) ([]Symbol, error) {
	out := make([]Symbol, len(s))
	for i, ch := range s {
		switch ch {
		case '0':
			out[i] = Sym0
		case '1':
			out[i] = Sym1
		default:
			return nil, fmt.Errorf("automata: bad symbol %q", ch)
		}
	}
	return out, nil
}

// StringEncodingSchemas returns the relational schema (P, P̄, F) of the
// Theorem 3.1(3) reduction: unary P and P̄ mark the positions carrying
// 1 and 0 respectively, and binary F is the successor function over
// positions, with a self-loop (k,k) at the final position and a tuple
// (0, i) at the initial position 0.
func StringEncodingSchemas() (p, pbar, f *relation.Schema) {
	return relation.NewSchema("P", relation.Attr("pos")),
		relation.NewSchema("Pbar", relation.Attr("pos")),
		relation.NewSchema("F", relation.Attr("from"), relation.Attr("to"))
}

// EncodeString produces the (P, P̄, F) instance representing w, using
// positions "0", "1", …: position i < len(w) carries symbol w[i] and
// has successor F(i, i+1); position len(w) is the end-of-input position
// carrying the unique self-loop F(k, k) that the reduction's
// well-formedness constraints require (a head "past the input" sits on
// it, matching the ε-transitions via α_i(x) = F(x, x)). The empty
// string encodes as the single end position 0 with its self-loop.
func EncodeString(w []Symbol) *relation.Database {
	p, pbar, f := StringEncodingSchemas()
	d := relation.NewDatabase(p, pbar, f)
	pos := func(i int) string { return fmt.Sprintf("%d", i) }
	end := len(w)
	for i, s := range w {
		if s == Sym1 {
			d.MustAdd("P", pos(i))
		} else {
			d.MustAdd("Pbar", pos(i))
		}
		d.MustAdd("F", pos(i), pos(i+1))
	}
	d.MustAdd("F", pos(end), pos(end))
	return d
}
