#!/bin/sh
# End-to-end smoke test for cmd/relserve: build the binary, start it on
# a random port, POST the Example 2.1 RCDP request, assert the verdict
# is "complete", check /healthz, then SIGTERM and assert a clean (exit
# 0) graceful drain. Run via `make server-smoke`.
set -eu

GO=${GO:-go}
here=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
repo=$(dirname -- "$here")
tmp=$(mktemp -d)
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "server-smoke: building relserve"
"$GO" build -o "$tmp/relserve" "$repo/cmd/relserve"

"$tmp/relserve" -addr 127.0.0.1:0 -addr-file "$tmp/addr" >"$tmp/relserve.log" 2>&1 &
pid=$!

# Wait for the server to publish its bound address.
i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "server-smoke: relserve never wrote its address" >&2
        cat "$tmp/relserve.log" >&2
        exit 1
    fi
    kill -0 "$pid" 2>/dev/null || {
        echo "server-smoke: relserve exited early" >&2
        cat "$tmp/relserve.log" >&2
        exit 1
    }
    sleep 0.1
done
addr=$(cat "$tmp/addr")
echo "server-smoke: relserve up on $addr"

health=$(curl -fsS "http://$addr/healthz")
[ "$health" = "ok" ] || { echo "server-smoke: /healthz said '$health'" >&2; exit 1; }

resp=$(curl -fsS -X POST --data-binary @"$here/example21_rcdp.json" "http://$addr/v1/rcdp")
echo "server-smoke: response: $resp"
case $resp in
*'"verdict": "complete"'*) ;;
*)
    echo "server-smoke: Example 2.1 RCDP verdict is not 'complete'" >&2
    exit 1
    ;;
esac

kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [ "$rc" != 0 ]; then
    echo "server-smoke: graceful shutdown exited $rc, want 0" >&2
    cat "$tmp/relserve.log" >&2
    exit 1
fi
grep -q "drained, exiting" "$tmp/relserve.log" || {
    echo "server-smoke: drain message missing from log" >&2
    cat "$tmp/relserve.log" >&2
    exit 1
}
echo "server-smoke: OK (complete verdict, healthy, clean SIGTERM drain)"
