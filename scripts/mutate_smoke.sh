#!/bin/sh
# End-to-end smoke test for the catalog mutation endpoints: start
# relserve, register the Example 2.1 context as a maintained catalog
# with two watched queries (Q2 is incomplete — the DB misses the
# support edge for the area-973 customer), then insert that edge over
# POST /v1/catalog/crm/insert and assert the maintained verdict flips
# to complete without a restart. Run via `make mutate-smoke`.
set -eu

GO=${GO:-go}
here=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
repo=$(dirname -- "$here")
tmp=$(mktemp -d)
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "mutate-smoke: building relserve"
"$GO" build -o "$tmp/relserve" "$repo/cmd/relserve"

"$tmp/relserve" -addr 127.0.0.1:0 -addr-file "$tmp/addr" >"$tmp/relserve.log" 2>&1 &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "mutate-smoke: relserve never wrote its address" >&2
        cat "$tmp/relserve.log" >&2
        exit 1
    fi
    kill -0 "$pid" 2>/dev/null || {
        echo "mutate-smoke: relserve exited early" >&2
        cat "$tmp/relserve.log" >&2
        exit 1
    }
    sleep 0.1
done
addr=$(cat "$tmp/addr")
echo "mutate-smoke: relserve up on $addr"

# Register the maintained catalog: resident DB plus watched queries.
reg=$(curl -fsS -X POST --data-binary @"$here/mutate_catalog.json" "http://$addr/v1/catalog")
echo "mutate-smoke: registered: $reg"

# The seed verdicts: Q1 complete, Q2 incomplete with a witness.
verdicts=$(curl -fsS "http://$addr/v1/catalog/crm/verdicts")
case $verdicts in
*'"verdict": "incomplete"'*) ;;
*)
    echo "mutate-smoke: seed verdicts lack the incomplete Q2: $verdicts" >&2
    exit 1
    ;;
esac

# Insert the missing support edge; both watched verdicts recheck.
mut=$(curl -fsS -X POST -d '{"facts": "Supt(e1, sales, c2)."}' "http://$addr/v1/catalog/crm/insert")
echo "mutate-smoke: insert: $mut"
case $mut in
*'"rechecked": 2'*) ;;
*)
    echo "mutate-smoke: insert did not recheck both watched queries: $mut" >&2
    exit 1
    ;;
esac

# The maintained verdicts must have flipped to all-complete, no restart
# and no re-posted check.
verdicts=$(curl -fsS "http://$addr/v1/catalog/crm/verdicts?after=1&wait_ms=5000")
case $verdicts in
*'"verdict": "incomplete"'*)
    echo "mutate-smoke: Q2 still incomplete after the insert: $verdicts" >&2
    exit 1
    ;;
*'"verdict": "complete"'*) ;;
*)
    echo "mutate-smoke: unexpected post-insert verdicts: $verdicts" >&2
    exit 1
    ;;
esac

kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [ "$rc" != 0 ]; then
    echo "mutate-smoke: graceful shutdown exited $rc, want 0" >&2
    cat "$tmp/relserve.log" >&2
    exit 1
fi
echo "mutate-smoke: OK (verdict flipped to complete in place)"
