#!/bin/sh
# End-to-end smoke test for the relserve scale-out: generate a CRM
# scenario, start two backends with the catalog preloaded plus a
# consistent-hash router in front (and a second router in -fanout
# mode), drive them with relload, and assert (a) a router burst
# finishes with zero transport errors and zero drops, (b) the verdict
# counts seen through the router — plain and fanout — are identical to
# the direct-backend run, and (c) /v1/backends reports both backends
# ready. Run via `make cluster-smoke`.
set -eu

GO=${GO:-go}
here=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
repo=$(dirname -- "$here")
tmp=$(mktemp -d)
pids=""

cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "cluster-smoke: building relserve, relload, relgen"
"$GO" build -o "$tmp/relserve" "$repo/cmd/relserve"
"$GO" build -o "$tmp/relload" "$repo/cmd/relload"
"$GO" build -o "$tmp/relgen" "$repo/cmd/relgen"

"$tmp/relgen" -out "$tmp/scenario" >/dev/null

wait_addr() { # file pid name
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "cluster-smoke: $3 never wrote its address" >&2
            cat "$tmp/$3.log" >&2
            exit 1
        fi
        kill -0 "$2" 2>/dev/null || {
            echo "cluster-smoke: $3 exited early" >&2
            cat "$tmp/$3.log" >&2
            exit 1
        }
        sleep 0.1
    done
}

start_backend() { # name
    # Explicit pool sizes: the default (GOMAXPROCS workers, 2x queue)
    # is too small on single-core CI boxes for the burst below, and the
    # smoke asserts zero 429s.
    "$tmp/relserve" -addr 127.0.0.1:0 -addr-file "$tmp/$1.addr" \
        -workers 4 -queue 60 \
        -catalog "crm=$tmp/scenario" >"$tmp/$1.log" 2>&1 &
    pid=$!
    pids="$pids $pid"
    wait_addr "$tmp/$1.addr" "$pid" "$1"
}

start_backend b1
start_backend b2
B1="http://$(cat "$tmp/b1.addr")"
B2="http://$(cat "$tmp/b2.addr")"
echo "cluster-smoke: backends up on $B1 $B2"

"$tmp/relserve" -addr 127.0.0.1:0 -addr-file "$tmp/router.addr" \
    -route "$B1,$B2" >"$tmp/router.log" 2>&1 &
pid=$!
pids="$pids $pid"
wait_addr "$tmp/router.addr" "$pid" "router"
ROUTER="http://$(cat "$tmp/router.addr")"

"$tmp/relserve" -addr 127.0.0.1:0 -addr-file "$tmp/fanout.addr" \
    -route "$B1,$B2" -fanout >"$tmp/fanout.log" 2>&1 &
pid=$!
pids="$pids $pid"
wait_addr "$tmp/fanout.addr" "$pid" "fanout"
FANOUT="http://$(cat "$tmp/fanout.addr")"
echo "cluster-smoke: routers up on $ROUTER (hash) and $FANOUT (fanout)"

# Both backends must be ready through the router's health endpoint.
backends=$(curl -fsS "$ROUTER/v1/backends")
ready=$(printf '%s' "$backends" | grep -c '"ready": true' || true)
if [ "$ready" != 2 ]; then
    echo "cluster-smoke: /v1/backends ready count = $ready, want 2" >&2
    printf '%s\n' "$backends" >&2
    exit 1
fi

run_load() { # out extra-args...
    out=$1
    shift
    "$tmp/relload" -scenario "$tmp/scenario" -catalog crm -n 16 \
        -concurrency 4 -json "$tmp/$out" "$@" >/dev/null
}

run_load direct.json -addr "$B1"
run_load routed.json -addr "$ROUTER"
run_load fanout.json -addr "$FANOUT"

verdicts() { # file -> normalized verdict object
    sed -n '/"verdicts": {/,/}/p' "$tmp/$1" | tr -d ' \n'
}

for rep in direct routed fanout; do
    for field in '"errors": 0' '"dropped": 0' '"ok": 16'; do
        grep -q "$field" "$tmp/$rep.json" || {
            echo "cluster-smoke: $rep report missing $field" >&2
            cat "$tmp/$rep.json" >&2
            exit 1
        }
    done
done

direct=$(verdicts direct.json)
for rep in routed fanout; do
    got=$(verdicts "$rep.json")
    if [ "$got" != "$direct" ]; then
        echo "cluster-smoke: $rep verdicts $got differ from direct $direct" >&2
        exit 1
    fi
done
echo "cluster-smoke: routed and fanout verdicts identical to direct ($direct)"

# A burst through the router with a batch per request: still no errors
# and no drops, and all 64 per-item verdicts agree with the direct run.
vlabel=$(printf '%s' "$direct" | grep -oE '"[a-z]+":' | grep -v verdicts | head -1 | tr -d '":')
"$tmp/relload" -scenario "$tmp/scenario" -catalog crm -addr "$ROUTER" \
    -batch 8 -n 8 -concurrency 4 -json "$tmp/batch.json" >/dev/null
for field in '"errors": 0' '"dropped": 0' "\"$vlabel\": 64"; do
    grep -q "$field" "$tmp/batch.json" || {
        echo "cluster-smoke: batch report missing $field" >&2
        cat "$tmp/batch.json" >&2
        exit 1
    }
done
echo "cluster-smoke: batch burst clean (64 $vlabel verdicts over 8 batches)"

echo "cluster-smoke: OK"
