#!/bin/sh
# End-to-end smoke test of the mining + degree pipeline: relmine
# generates CRM evidence with the mdm generator, mines it and must
# emit at least one checker-validated constraint with full ground-truth
# precision; the same evidence document then drives POST /v1/mine over
# live HTTP, and a degree-requesting /v1/rcdp call must return a
# quantitative completeness score. Run via `make mine-smoke`.
set -eu

GO=${GO:-go}
here=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
repo=$(dirname -- "$here")
tmp=$(mktemp -d)
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "mine-smoke: building relmine and relserve"
"$GO" build -o "$tmp/relmine" "$repo/cmd/relmine"
"$GO" build -o "$tmp/relserve" "$repo/cmd/relserve"

# 1. CLI mining: generated evidence, ground-truth scoring, and an
#    evidence dump for the HTTP leg.
out=$("$tmp/relmine" -pairs 4 -ground-truth -emit-evidence "$tmp/pairs.ev")
echo "$out"
case $out in
*'validated=true'*) ;;
*)
    echo "mine-smoke: relmine emitted no validated constraint" >&2
    exit 1
    ;;
esac
case $out in
*'precision=1.00'*) ;;
*)
    echo "mine-smoke: relmine precision below 1.00 on planted evidence" >&2
    exit 1
    ;;
esac
[ -s "$tmp/pairs.ev" ] || {
    echo "mine-smoke: relmine wrote no evidence document" >&2
    exit 1
}

# 2. HTTP mining: the same evidence through POST /v1/mine.
"$tmp/relserve" -addr 127.0.0.1:0 -addr-file "$tmp/addr" >"$tmp/relserve.log" 2>&1 &
pid=$!
i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "mine-smoke: relserve never wrote its address" >&2
        cat "$tmp/relserve.log" >&2
        exit 1
    fi
    kill -0 "$pid" 2>/dev/null || {
        echo "mine-smoke: relserve exited early" >&2
        cat "$tmp/relserve.log" >&2
        exit 1
    }
    sleep 0.1
done
addr=$(cat "$tmp/addr")
echo "mine-smoke: relserve up on $addr"

# Wrap the evidence document into the JSON request body (escape
# backslashes, quotes and newlines).
ev=$(sed -e 's/\\/\\\\/g' -e 's/"/\\"/g' "$tmp/pairs.ev" | awk '{printf "%s\\n", $0}')
printf '{"evidence": "%s"}' "$ev" >"$tmp/mine.json"
mined=$(curl -fsS -X POST --data-binary @"$tmp/mine.json" "http://$addr/v1/mine")
echo "mine-smoke: /v1/mine: $mined"
case $mined in
*'"validated": true'*) ;;
*)
    echo "mine-smoke: /v1/mine returned no validated constraint: $mined" >&2
    exit 1
    ;;
esac

# 3. Degree over HTTP: the Example 2.1 instance with "degree": true
#    must come back complete with an exact score of 1.
req=$(sed 's/"query"/"degree": true, "query"/' "$here/example21_rcdp.json")
deg=$(printf '%s' "$req" | curl -fsS -X POST --data-binary @- "http://$addr/v1/rcdp")
echo "mine-smoke: /v1/rcdp degree: $deg"
case $deg in
*'"degree"'*) ;;
*)
    echo "mine-smoke: degree-requesting check returned no degree object: $deg" >&2
    exit 1
    ;;
esac
case $deg in
*'"value": 1'*) ;;
*)
    echo "mine-smoke: complete instance must score degree 1: $deg" >&2
    exit 1
    ;;
esac
case $deg in
*'"exact": true'*) ;;
*)
    echo "mine-smoke: unbudgeted degree run must be exact: $deg" >&2
    exit 1
    ;;
esac

kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [ "$rc" != 0 ]; then
    echo "mine-smoke: graceful shutdown exited $rc, want 0" >&2
    cat "$tmp/relserve.log" >&2
    exit 1
fi
echo "mine-smoke: OK (mined validated constraints on CLI and HTTP; degree scored over HTTP)"
