#!/bin/sh
# End-to-end smoke test for the approximation engine over HTTP: start
# relserve, register the Example 2.1 context as a maintained catalog
# (watched Q2 is incomplete — the DB misses the support edge for the
# area-973 customer), ask POST /v1/advise what to acquire against the
# resident database, feed the returned all_facts block verbatim to
# POST /v1/catalog/crm/insert, and assert the maintained verdict flips
# to complete. Run via `make approx-smoke`.
set -eu

GO=${GO:-go}
here=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
repo=$(dirname -- "$here")
tmp=$(mktemp -d)
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "approx-smoke: building relserve"
"$GO" build -o "$tmp/relserve" "$repo/cmd/relserve"

"$tmp/relserve" -addr 127.0.0.1:0 -addr-file "$tmp/addr" >"$tmp/relserve.log" 2>&1 &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "approx-smoke: relserve never wrote its address" >&2
        cat "$tmp/relserve.log" >&2
        exit 1
    fi
    kill -0 "$pid" 2>/dev/null || {
        echo "approx-smoke: relserve exited early" >&2
        cat "$tmp/relserve.log" >&2
        exit 1
    }
    sleep 0.1
done
addr=$(cat "$tmp/addr")
echo "approx-smoke: relserve up on $addr"

# Register the maintained catalog: resident DB plus watched queries.
reg=$(curl -fsS -X POST --data-binary @"$here/mutate_catalog.json" "http://$addr/v1/catalog")
echo "approx-smoke: registered: $reg"

# Ask for acquisition advice against the resident database (no db
# field). The engine must report the incomplete base verdict and a
# certified flip.
adv=$(curl -fsS -X POST -d '{
  "catalog": "crm",
  "query": "Q2(C) :- Supt(E, D, C), Cust(C, N, CC, A, P), CC = 01, A = 973"
}' "http://$addr/v1/advise")
echo "approx-smoke: advice: $adv"
case $adv in
*'"verdict": "incomplete"'*) ;;
*)
    echo "approx-smoke: advise did not report the incomplete base verdict: $adv" >&2
    exit 1
    ;;
esac
case $adv in
*'"flipped": true'*) ;;
*)
    echo "approx-smoke: advise did not certify a flip: $adv" >&2
    exit 1
    ;;
esac

# Extract the all_facts JSON string verbatim (writeJSON indents with
# two spaces and all_facts is a single line) and transplant it into a
# mutation request, escapes and all.
facts=$(printf '%s\n' "$adv" | sed -n 's/^  "all_facts": \(".*"\),\{0,1\}$/\1/p')
if [ -z "$facts" ]; then
    echo "approx-smoke: could not extract all_facts from: $adv" >&2
    exit 1
fi

mut=$(curl -fsS -X POST -d "{\"facts\": $facts}" "http://$addr/v1/catalog/crm/insert")
echo "approx-smoke: insert: $mut"

# The maintained verdicts must have flipped to all-complete: the
# advised acquisition closed the completeness gap in place.
verdicts=$(curl -fsS "http://$addr/v1/catalog/crm/verdicts?after=1&wait_ms=5000")
case $verdicts in
*'"verdict": "incomplete"'*)
    echo "approx-smoke: Q2 still incomplete after acquiring the advice: $verdicts" >&2
    exit 1
    ;;
*'"verdict": "complete"'*) ;;
*)
    echo "approx-smoke: unexpected post-acquisition verdicts: $verdicts" >&2
    exit 1
    ;;
esac

kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [ "$rc" != 0 ]; then
    echo "approx-smoke: graceful shutdown exited $rc, want 0" >&2
    cat "$tmp/relserve.log" >&2
    exit 1
fi
echo "approx-smoke: OK (advised acquisition flipped the verdict to complete)"
