// Command bench_diff is the CI bench-regression gate: it compares one
// or more `relbench -quick -json` runs against the committed
// BENCH_BASELINE.json and fails when a benchmark regressed beyond the
// tolerance.
//
//	go run ./scripts -baseline BENCH_BASELINE.json current.json [more.json ...]
//	go run ./scripts -baseline BENCH_BASELINE.json -write current1.json current2.json ...
//
// Records are keyed by (table, name, param, no_index, interning) —
// workers is excluded so a baseline recorded at -workers 1 gates any
// single-worker run. When several input files are given, each key's
// duration is the median across them (run relbench a few times and
// pass every file to damp scheduler noise).
//
// CI runners and developer machines differ in absolute speed, so the
// gate is *scale-normalized*: it first computes the run-wide median
// ratio current/baseline over all shared keys (the machine-speed
// factor), then flags a key only when its ratio exceeds that factor by
// more than -tolerance. A uniformly slower machine shifts the factor
// and passes; a single benchmark that got slower than the rest of the
// suite stands out and fails. Keys whose baseline duration is below
// -min-duration are structurally checked (they must still exist) but
// not timed — micro-entries are pure noise.
//
// Structural check: every baseline key must be present in the current
// run (a silently dropped benchmark fails the gate); new keys are
// reported as notes and suggest a -write refresh.
//
// -write regenerates the baseline file from the inputs' medians
// instead of diffing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"
)

// record mirrors the relbench -json record shape; unknown fields are
// ignored so relbench can grow columns without breaking the gate.
type record struct {
	Table      string `json:"table"`
	Name       string `json:"name"`
	Param      int    `json:"param"`
	NoIndex    bool   `json:"no_index"`
	Interning  bool   `json:"interning"`
	DurationNS int64  `json:"duration_ns"`
}

func (r record) key() string {
	return fmt.Sprintf("%s|%s|%d|noindex=%v|intern=%v", r.Table, r.Name, r.Param, r.NoIndex, r.Interning)
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_BASELINE.json", "committed baseline file")
		tolerance    = flag.Float64("tolerance", 0.25, "allowed slowdown beyond the run-wide machine-speed factor")
		minDuration  = flag.Duration("min-duration", 10*time.Millisecond, "baseline entries faster than this are presence-checked only")
		write        = flag.Bool("write", false, "regenerate the baseline from the inputs instead of diffing")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "bench_diff: need at least one relbench -json input file")
		os.Exit(2)
	}
	current, order, err := medians(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_diff:", err)
		os.Exit(2)
	}
	if *write {
		if err := writeBaseline(*baselinePath, current, order); err != nil {
			fmt.Fprintln(os.Stderr, "bench_diff:", err)
			os.Exit(2)
		}
		fmt.Printf("bench_diff: wrote %d entries to %s\n", len(order), *baselinePath)
		return
	}
	baseline, baseOrder, err := medians([]string{*baselinePath})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_diff:", err)
		os.Exit(2)
	}
	if diff(baseline, baseOrder, current, *tolerance, *minDuration) {
		os.Exit(1)
	}
}

// medians loads every file and reduces duplicate keys to their median
// duration, remembering first-appearance order and a representative
// record per key.
func medians(paths []string) (map[string]record, []string, error) {
	durs := make(map[string][]int64)
	reps := make(map[string]record)
	var order []string
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		var recs []record
		if err := json.Unmarshal(raw, &recs); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		for _, r := range recs {
			k := r.key()
			if _, seen := durs[k]; !seen {
				order = append(order, k)
				reps[k] = r
			}
			durs[k] = append(durs[k], r.DurationNS)
		}
	}
	out := make(map[string]record, len(durs))
	for k, ds := range durs {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		r := reps[k]
		r.DurationNS = ds[len(ds)/2]
		out[k] = r
	}
	return out, order, nil
}

func writeBaseline(path string, m map[string]record, order []string) error {
	recs := make([]record, 0, len(order))
	for _, k := range order {
		recs = append(recs, m[k])
	}
	buf, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// diff reports (and returns true on) regressions of current against
// baseline.
func diff(baseline map[string]record, baseOrder []string, current map[string]record, tolerance float64, minDuration time.Duration) bool {
	// Machine-speed factor: median ratio over the timed shared keys.
	var ratios []float64
	for k, b := range baseline {
		c, ok := current[k]
		if !ok || b.DurationNS <= 0 || time.Duration(b.DurationNS) < minDuration {
			continue
		}
		ratios = append(ratios, float64(c.DurationNS)/float64(b.DurationNS))
	}
	scale := 1.0
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		scale = ratios[len(ratios)/2]
	}
	fmt.Printf("bench_diff: %d baseline entries, %d current, machine-speed factor %.2f\n",
		len(baseline), len(current), scale)

	failed := false
	for _, k := range baseOrder {
		b := baseline[k]
		c, ok := current[k]
		if !ok {
			fmt.Printf("FAIL %s: present in baseline but missing from the current run\n", k)
			failed = true
			continue
		}
		if time.Duration(b.DurationNS) < minDuration {
			continue
		}
		ratio := float64(c.DurationNS) / float64(b.DurationNS)
		limit := scale * (1 + tolerance)
		if ratio > limit {
			fmt.Printf("FAIL %s: %v -> %v (%.2fx, limit %.2fx)\n",
				k, time.Duration(b.DurationNS), time.Duration(c.DurationNS), ratio, limit)
			failed = true
		}
	}
	for k := range current {
		if _, ok := baseline[k]; !ok {
			fmt.Printf("note: new benchmark %s not in baseline (refresh with -write)\n", k)
		}
	}
	if !failed {
		fmt.Println("bench_diff: no regressions")
	}
	return failed
}
