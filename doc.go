// Package repro is a from-scratch Go reproduction of Wenfei Fan and
// Floris Geerts, "Relative Information Completeness" (PODS 2009;
// extended version ACM TODS 35(4), 2010).
//
// The library decides whether a partially closed database — one
// constrained by master data through containment constraints — has
// complete information to answer a query (RCDP), and whether any
// complete database exists for a query at all (RCQP), for the query and
// constraint languages studied in the paper (CQ, UCQ, ∃FO⁺, FO, FP and
// inclusion dependencies). See README.md for the architecture,
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of the paper's complexity tables.
package repro
