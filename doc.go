// Package repro is a from-scratch Go reproduction of Wenfei Fan and
// Floris Geerts, "Relative Information Completeness" (PODS 2009;
// extended version ACM TODS 35(4), 2010).
//
// The library decides whether a partially closed database — one
// constrained by master data through containment constraints — has
// complete information to answer a query (RCDP), and whether any
// complete database exists for a query at all (RCQP), for the query and
// constraint languages studied in the paper (CQ, UCQ, ∃FO⁺, FO, FP and
// inclusion dependencies).
//
// The decision procedures live in internal/core. Ungoverned entry
// points (core.RCDP, core.RCQP) run to completion; the governed
// Checker.RCDPCtx / RCQPCtx variants take a context and a resource
// Budget and return a three-valued Verdict (complete / incomplete /
// unknown) together with the Reason a budget dimension was exhausted
// and the BudgetStats consumed. The undecidable FO/FP rows get bounded
// semi-decision procedures (core.BoundedRCDPCtx, core.BoundedRCQPCtx).
//
// All engines report into internal/obs, a zero-dependency metrics
// registry and JSONL search tracer surfaced by the relcheck and
// relbench commands through their -metrics and -trace flags.
//
// See README.md for the architecture and CLI usage, DESIGN.md for the
// system inventory (including the observability design) and
// EXPERIMENTS.md for the reproduction of the paper's complexity tables.
package repro
