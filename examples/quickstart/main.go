// Quickstart: decide whether a partially closed database has complete
// information to answer a query (Example 1.1 of Fan & Geerts).
//
// A company keeps master data DCust — the closed-world list of all its
// domestic customers — while the operational relations Cust and Supt
// may be missing tuples. The containment constraint φ₀ ties the
// supported domestic customers to the master data. We ask: is the
// answer to "which area-908 customers does employee e0 support?"
// complete, i.e. can no legal addition of tuples change it?
package main

import (
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/mdm"
	"repro/internal/relation"
)

func main() {
	schemas := mdm.Schemas()
	master := mdm.MasterSchemas()

	// Master data: two domestic customers.
	dm := relation.NewDatabase(master[mdm.DCust], master[mdm.ManageM])
	dm.MustAdd(mdm.DCust, "c1", "Ann", "908", "5550001")
	dm.MustAdd(mdm.DCust, "c2", "Bob", "973", "5550002")

	// The database: both customers present, e0 supports c1.
	d := relation.NewDatabase(schemas[mdm.Cust], schemas[mdm.Supt], schemas[mdm.Manage])
	d.MustAdd(mdm.Cust, "c1", "Ann", "01", "908", "5550001")
	d.MustAdd(mdm.Cust, "c2", "Bob", "01", "973", "5550002")
	d.MustAdd(mdm.Supt, "e0", "sales", "c1")

	v := cc.NewSet(mdm.Phi0())
	q := mdm.Q1("e0", "908")

	answers, _ := q.Eval(d)
	fmt.Printf("Q1(D) = %v\n", answers)

	r, err := core.RCDP(q, d, dm, v)
	if err != nil {
		log.Fatal(err)
	}
	if r.Complete {
		fmt.Println("RCDP: the database is COMPLETE for Q1 — every area-908")
		fmt.Println("domestic customer e0 could support is already answered.")
	} else {
		fmt.Printf("RCDP: INCOMPLETE — adding the following tuples is legal and changes the answer:\n%v\nnew answer: %v\n",
			r.Extension, r.NewTuple)
	}

	// Is there any database complete for Q1 at all?
	res, err := core.RCQP(q, dm, v, schemas)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RCQP: %v (method %s)\n", res.Status, res.Method)
}
