// Master-data design via RCQP: "a practical challenge for MDM is to
// identify what data should be maintained as master data" (Section 2.3
// of Fan & Geerts, citing Loshin 2008). Given a workload of queries,
// run RCQP under candidate constraint sets and report which master
// coverage makes every query relatively complete.
package main

import (
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/mdm"
	"repro/internal/qlang"
)

func main() {
	s := mdm.Generate(mdm.DefaultConfig())

	workload := []struct {
		name string
		q    qlang.Query
	}{
		{"Q0(908): supported domestic customers in area 908", mdm.Q0("908")},
		{"Q1(e00, 908): area-908 customers supported by e00", mdm.Q1("e00", "908")},
		{"Q2(e00): all customers supported by e00", mdm.Q2("e00")},
		{"Q3/2hop: managers two levels above e00", mdm.Q3CQ("e00", 2)},
	}

	designs := []struct {
		name string
		v    *cc.Set
	}{
		{"no constraints (pure open world)", cc.NewSet()},
		{"φ0 only (domestic customers mastered)", cc.NewSet(mdm.Phi0())},
		{"φ0 + cid IND + Manage IND (full master coverage)",
			cc.NewSet(mdm.Phi0(), mdm.CidIND(), mdm.ManageIND())},
	}

	fmt.Println("query relative completeness under candidate master-data designs")
	fmt.Println("(yes = some complete database exists; no = master data too weak)")
	for _, dsg := range designs {
		fmt.Printf("\n== design: %s\n", dsg.name)
		allYes := true
		for _, w := range workload {
			res, err := core.RCQP(w.q, s.Dm, dsg.v, s.Schemas)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("   %-52s → %v (%s)\n", w.name, res.Status, res.Method)
			if res.Status != core.Yes {
				allYes = false
			}
		}
		if allYes {
			fmt.Println("   → this design supports complete answers for the whole workload")
		}
	}
}
