// The Section 2.3 walkthrough: the three relative-completeness
// paradigms of Fan & Geerts on the CRM scenario —
//
//	(1) assessing whether the data in a database is complete for a
//	    query (RCDP),
//	(2) guidance for what data should be collected when it is not
//	    (MakeComplete, driven by the RCDP counterexamples), and
//	(3) a guideline for how master data should be expanded when no
//	    complete database can exist at all (RCQP says no).
package main

import (
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/mdm"
)

func main() {
	cfg := mdm.DefaultConfig()
	cfg.DomesticCustomers = 12
	cfg.Employees = 3
	cfg.Completeness = 0.5 // half the master customers are missing from D
	s := mdm.Generate(cfg)
	v := cc.NewSet(mdm.Phi0())

	fmt.Printf("scenario: |DCust| = %d master customers, |Cust| = %d rows in D (completeness %.0f%%)\n\n",
		s.Dm.Instance(mdm.DCust).Len(), s.D.Instance(mdm.Cust).Len(), cfg.Completeness*100)

	// ---- Paradigm (1): assess completeness of D for Q0. --------------
	q0 := mdm.Q0("908")
	r, err := core.RCDP(q0, s.D, s.Dm, v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("(1) Q0: all supported domestic customers with area code 908")
	if r.Complete {
		fmt.Println("    RCDP: complete — the answer can be trusted.")
	} else {
		fmt.Printf("    RCDP: incomplete — e.g. these tuples could legally be added:\n      %v\n", r.Extension)
	}

	// ---- Paradigm (2): can D be extended to completeness? Do it. -----
	res, err := core.RCQP(q0, s.Dm, v, s.Schemas)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n(2) RCQP(Q0): %v", res.Status)
	if res.Status == core.Yes && !r.Complete {
		fmt.Print(" — a complete database exists")
		done, rounds, err := core.MakeComplete(q0, s.D, s.Dm, v, 100)
		if err != nil {
			log.Fatal(err)
		}
		added := done.TupleCount() - s.D.TupleCount()
		fmt.Printf("; MakeComplete added %d tuples in %d rounds.\n", added, rounds)
		check, err := core.RCDP(q0, done, s.Dm, v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    re-check: complete = %v\n", check.Complete)
	} else {
		fmt.Println(".")
	}

	// ---- Paradigm (3): Q0' over ALL customers, international too. ----
	// International customers are not bounded by any master data, so no
	// database can ever be complete: the master data must be expanded.
	q0prime := mdm.Q2("e00") // all customers supported by e00, domestic or not
	res, err = core.RCQP(q0prime, s.Dm, v, s.Schemas)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n(3) Q0': all customers supported by e00 (international included)\n")
	fmt.Printf("    RCQP: %v — %s\n", res.Status, res.Detail)
	if res.Status == core.No {
		fmt.Println("    guideline: extend the master data to cover all customers")
		fmt.Println("    (or bound Supt.cid by master data), then re-run the analysis:")
		v2 := cc.NewSet(mdm.Phi0(), mdm.CidIND())
		res2, err := core.RCQP(q0prime, s.Dm, v2, s.Schemas)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    with π_cid(Supt) ⊆ π_cid(DCust): RCQP = %v\n", res2.Status)
	}
}
