// Query Q₃ of Example 1.1: the management hierarchy. Whether a
// database is complete is relative to the query language — the datalog
// (FP) version of "everyone above e00" computes the transitive closure
// itself, while the conjunctive k-hop version needs the closure
// materialized; and with Manage bounded by the master relation ManageM
// (an IND), the k-hop query is relatively complete and an incomplete
// database can be completed automatically.
package main

import (
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/mdm"
	"repro/internal/relation"
)

func main() {
	cfg := mdm.DefaultConfig()
	cfg.ManageDepth = 5
	s := mdm.Generate(cfg)
	v := cc.NewSet(mdm.ManageIND())

	// The FP query sees the whole chain from the direct edges.
	fp := mdm.Q3Datalog("e00")
	full, err := fp.Eval(s.D)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("datalog Q3: %d managers above e00: %v\n", len(full), full)

	// The 2-hop CQ sees only what is materialized.
	q2hop := mdm.Q3CQ("e00", 2)
	part, err := q2hop.Eval(s.D)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-hop CQ: %v\n\n", part)

	// Drop an edge: the 2-hop CQ becomes incomplete relative to ManageM.
	d := s.D.Clone()
	d.Instance(mdm.Manage).Remove(relation.T("e02", "e01"))
	r, err := core.RCDP(q2hop, d, s.Dm, v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after dropping Manage(e02, e01): complete = %v\n", r.Complete)
	if !r.Complete {
		fmt.Printf("  missing data (from the counterexample): %v\n", r.Extension)
	}

	// Complete it: the guidance loop re-adds exactly what the master
	// data mandates.
	done, rounds, err := core.MakeComplete(q2hop, d, s.Dm, v, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MakeComplete: %d rounds, Manage now has %d edges (had %d)\n",
		rounds, done.Instance(mdm.Manage).Len(), d.Instance(mdm.Manage).Len())

	// And the relative-completeness-of-the-query view (RCQP): bounded by
	// ManageM, the k-hop query admits complete databases.
	res, err := core.RCQP(q2hop, s.Dm, v, s.Schemas)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RCQP(2-hop Q3): %v via %s\n", res.Status, res.Method)
}
