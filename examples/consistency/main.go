// Completeness and consistency in one framework (Section 2.2 and
// Proposition 2.1 of Fan & Geerts): denial constraints, conditional
// functional dependencies and conditional inclusion dependencies are
// expressible as containment constraints, so a single partially-closed
// check enforces both data consistency and relative completeness.
package main

import (
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/mdm"
	"repro/internal/query"
	"repro/internal/relation"
)

func main() {
	schemas := mdm.Schemas()
	emp := relation.NewSchema("Emp", relation.Attr("eid"), relation.Attr("dept"))
	schemas["Emp"] = emp
	d := relation.NewDatabase(schemas[mdm.Cust], schemas[mdm.Supt], schemas[mdm.Manage], emp)
	dm := relation.NewDatabase(mdm.MasterSchemas()[mdm.DCust])

	// Three integrity constraints from Section 2.2, translated to CCs.
	cfd := &cc.CFD{ // dept = "BU" ⟹ eid → cid (the CFD of Section 2.2)
		Name: "buCFD", Rel: mdm.Supt,
		From: []int{0}, To: []int{2},
		PatX: []cc.PatternItem{{Col: 1, Val: "BU"}},
	}
	cind := &cc.CIND{ // BU supporters must be BU employees
		Name: "buCIND", R1: mdm.Supt, X1: []int{0},
		Pat1: []cc.PatternItem{{Col: 1, Val: "BU"}},
		R2:   "Emp", X2: []int{0},
		Pat2: []cc.PatternItem{{Col: 1, Val: "BU"}},
	}
	denial := &cc.Denial{ // nobody supports themselves
		Name:  "noSelf",
		Atoms: []query.RelAtom{query.Atom(mdm.Supt, query.Var("e"), query.Var("d"), query.Var("c"))},
		Conds: []query.EqAtom{query.Eq(query.Var("e"), query.Var("c"))},
	}

	consistency := cc.NewSet(cfd.ToCCs(3)...)
	consistency.Add(denial.ToCC(), cind.ToCC(3, 2))

	d.MustAdd("Emp", "e0", "BU")
	d.MustAdd(mdm.Supt, "e0", "BU", "c1")

	ok, err := consistency.Satisfied(d, dm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consistent database: all integrity constraints hold = %v\n", ok)

	// Introduce a CFD violation: e0 now supports a second BU customer.
	bad := d.Clone()
	bad.MustAdd(mdm.Supt, "e0", "BU", "c2")
	c, witness, viol, err := consistency.FirstViolation(bad, dm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after a bad insert: violated = %v, constraint = %s, witness = %v\n\n", viol, c.Name, witness)

	// Uniform framework: combine the CQ-expressible consistency CCs
	// (CFD + denial) with the completeness constraint φ₁ (bound every
	// employee to k = 2 customers) and decide completeness under both
	// at once with the exact decider.
	all := cc.NewSet(cfd.ToCCs(3)...)
	all.Add(denial.ToCC(), mdm.Phi1(2))
	d.MustAdd(mdm.Supt, "e1", "sales", "c7")
	d.MustAdd(mdm.Supt, "e1", "sales", "c8")

	q := mdm.Q2("e1")
	r, err := core.RCDP(q, d, dm, all)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q2(e1) answers 2 customers; complete under consistency+cardinality CCs = %v\n",
		r.Complete)
	fmt.Println("(the two answers exhaust the k = 2 budget, so no consistent,")
	fmt.Println(" partially closed extension can change the answer — Example 3.1)")

	// The CIND needs FO as L_C — RCDP is then undecidable (Theorem
	// 3.1(2)) and the bounded semi-decision procedure takes over.
	withCIND := cc.NewSet(all.Constraints...)
	withCIND.Add(cind.ToCC(3, 2))
	br, err := core.BoundedRCDP(q, d, dm, withCIND, core.BoundedOpts{MaxAdd: 1, FreshValues: 1, MaxPool: 500000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith the FO-expressed CIND added: bounded check (Theorem 3.1 territory)\n")
	fmt.Printf("  incomplete within %d-tuple extensions = %v (%d candidates explored)\n",
		br.MaxAdd, br.Incomplete, br.Explored)
}
